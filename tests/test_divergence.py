"""End-to-end divergence handling: sentinel scores, poison-proof labels,
data validation, and search-loop behavior under diverged candidates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import autodiff as ad
from repro.autodiff import Tensor
from repro.comparator import (
    ScoredArchHyper,
    all_ordered_pairs,
    comparable_pair_indices,
    diverged_mask,
    dynamic_pairs,
    has_comparable_pair,
    make_label,
    ordered_pair_indices,
    pair_index_arrays,
)
from repro.core.health import DivergenceError
from repro.data import CTSData, NonFiniteDataError, non_finite_report, sanitize_values
from repro.data.transforms import impute_non_finite
from repro.nn.loss import bce_with_logits
from repro.runtime import ProxyEvaluator, RetryPolicy, proxy_fingerprint
from repro.runtime.evaluator import resolve_divergence_policy
from repro.search import EvolutionConfig, EvolutionarySearch, SearchTrace
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import ProxyConfig, SENTINEL_SCORE, Task, is_sentinel_score

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


def _toy_task(t=200, seed=0, name="toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adj = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData(name, values, adj, "test"), p=6, q=3)


def _candidates(count, seed=0):
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    return space.sample_batch(count, np.random.default_rng(seed))


def always_diverges(arch_hyper, task, config):
    """Module-level (picklable) eval fn that always diverges."""
    raise DivergenceError("injected divergence")


def sometimes_diverges(arch_hyper, task, config):
    """Deterministically diverge for about half the fingerprint space."""
    digest = proxy_fingerprint(arch_hyper, task, config)
    value = int(digest[:8], 16) / 0xFFFFFFFF
    if value < 0.5:
        raise DivergenceError(f"injected divergence ({value:.3f})")
    return value


class TestDivergencePolicy:
    def test_default_is_sentinel(self):
        assert resolve_divergence_policy() == "sentinel"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIVERGENCE_POLICY", "raise")
        assert resolve_divergence_policy() == "raise"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIVERGENCE_POLICY", "raise")
        assert resolve_divergence_policy("sentinel") == "sentinel"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            resolve_divergence_policy("explode")


class TestSentinelScore:
    def test_sentinel_is_finite_and_stable(self):
        assert np.isfinite(SENTINEL_SCORE)
        assert SENTINEL_SCORE == float(np.finfo(np.float32).max)

    def test_is_sentinel_score(self):
        assert is_sentinel_score(SENTINEL_SCORE)
        assert is_sentinel_score(float("inf"))
        assert is_sentinel_score(float("nan"))
        assert not is_sentinel_score(0.5)

    def test_sentinel_loses_every_comparison(self):
        assert make_label(0.99, SENTINEL_SCORE) == 1.0
        assert make_label(SENTINEL_SCORE, 0.99) == 0.0


class TestEvaluatorSentinel:
    def test_serial_divergence_becomes_sentinel(self):
        evaluator = ProxyEvaluator(workers=1, eval_fn=always_diverges)
        task = _toy_task()
        scores = evaluator.evaluate_many(_candidates(3), task, ProxyConfig(epochs=1))
        assert scores == [SENTINEL_SCORE] * 3
        assert evaluator.stats.divergences == 3
        assert "diverged" in evaluator.stats.report()

    def test_divergence_is_retry_exempt_under_sentinel(self):
        evaluator = ProxyEvaluator(
            workers=1,
            eval_fn=always_diverges,
            retry_policy=RetryPolicy(max_retries=3, backoff_base=0.0),
        )
        evaluator._sleep = lambda _: None
        scores = evaluator.evaluate_many(
            _candidates(2), _toy_task(), ProxyConfig(epochs=1)
        )
        assert scores == [SENTINEL_SCORE] * 2
        assert evaluator.stats.retries == 0
        assert evaluator.stats.failures == 0

    def test_raise_policy_propagates_without_retry(self):
        evaluator = ProxyEvaluator(
            workers=1,
            eval_fn=always_diverges,
            retry_policy=RetryPolicy(max_retries=3, backoff_base=0.0),
            divergence_policy="raise",
        )
        evaluator._sleep = lambda _: None
        with pytest.raises(DivergenceError):
            evaluator.evaluate_many(_candidates(1), _toy_task(), ProxyConfig(epochs=1))
        assert evaluator.stats.retries == 0
        assert evaluator.stats.divergences == 1

    def test_serial_and_pool_bitwise_identical(self):
        task = _toy_task()
        candidates = _candidates(4)
        config = ProxyConfig(epochs=1)
        serial = ProxyEvaluator(workers=1, eval_fn=sometimes_diverges)
        pool = ProxyEvaluator(workers=2, eval_fn=sometimes_diverges)
        scores_serial = serial.evaluate_many(candidates, task, config)
        scores_pool = pool.evaluate_many(candidates, task, config)
        assert scores_serial == scores_pool  # bitwise: float equality
        assert serial.stats.divergences == pool.stats.divergences
        assert any(is_sentinel_score(s) for s in scores_serial)
        assert any(not is_sentinel_score(s) for s in scores_serial)

    def test_pool_raise_policy_crosses_process_boundary(self):
        evaluator = ProxyEvaluator(
            workers=2, eval_fn=always_diverges, divergence_policy="raise"
        )
        with pytest.raises(DivergenceError):
            evaluator.evaluate_many(_candidates(2), _toy_task(), ProxyConfig(epochs=1))
        assert evaluator.stats.divergences >= 1

    def test_sentinel_is_cacheable(self, tmp_path):
        from repro.runtime import EvalCache

        evaluator = ProxyEvaluator(
            workers=1, cache=EvalCache(tmp_path), eval_fn=always_diverges
        )
        task = _toy_task()
        (ah,) = _candidates(1)
        config = ProxyConfig(epochs=1)
        first = evaluator.evaluate(ah, task, config)
        second = evaluator.evaluate(ah, task, config)
        assert first == second == SENTINEL_SCORE
        assert evaluator.stats.hits == 1  # second call never re-evaluated
        assert evaluator.stats.divergences == 1


class TestEndToEndDivergence:
    """The acceptance scenario: a pathological lr=1e3 candidate."""

    CONFIG = ProxyConfig(epochs=10, lr=1e3)

    def test_lr_1e3_candidate_yields_sentinel(self):
        task = _toy_task()
        (ah,) = _candidates(1)
        evaluator = ProxyEvaluator(workers=1)
        score = evaluator.evaluate(ah, task, self.CONFIG)
        assert score == SENTINEL_SCORE
        assert evaluator.stats.divergences == 1

    def test_lr_1e3_serial_pool_identical(self):
        task = _toy_task()
        candidates = _candidates(2)
        serial = ProxyEvaluator(workers=1)
        pool = ProxyEvaluator(workers=2)
        scores_serial = serial.evaluate_many(candidates, task, self.CONFIG)
        scores_pool = pool.evaluate_many(candidates, task, self.CONFIG)
        assert scores_serial == scores_pool
        assert serial.stats.divergences == pool.stats.divergences

    def test_lr_1e3_labels_stay_finite(self):
        """Sentinel scores mixed with real ones yield only finite 0/1 labels."""
        task = _toy_task()
        (bad,) = _candidates(1)
        (good,) = _candidates(1, seed=7)
        evaluator = ProxyEvaluator(workers=1)
        bad_score = evaluator.evaluate(bad, task, self.CONFIG)
        good_score = evaluator.evaluate(good, task, ProxyConfig(epochs=1))
        scores = np.array([good_score, bad_score])
        pairs = dynamic_pairs(scores, np.random.default_rng(0), 8)
        _, _, labels = pair_index_arrays(pairs)
        assert np.isfinite(labels).all()
        assert set(np.unique(labels)) <= {0.0, 1.0}
        # The diverged candidate loses every comparison it appears in.
        for pair in pairs:
            winner = pair.index_a if pair.label == 1.0 else pair.index_b
            assert winner == 0


class TestDivergenceAwarePairing:
    def test_diverged_mask(self):
        mask = diverged_mask(np.array([0.1, SENTINEL_SCORE, 0.2]))
        assert mask.tolist() == [False, True, False]

    def test_has_comparable_pair(self):
        assert has_comparable_pair(np.array([0.1, SENTINEL_SCORE]))
        assert has_comparable_pair(np.array([0.1, 0.2]))
        assert not has_comparable_pair(np.array([SENTINEL_SCORE, SENTINEL_SCORE]))
        assert not has_comparable_pair(np.array([0.1]))

    def test_no_pair_of_two_diverged(self):
        scores = np.array([0.5, SENTINEL_SCORE, SENTINEL_SCORE, SENTINEL_SCORE])
        pairs = dynamic_pairs(scores, np.random.default_rng(0), 50)
        assert len(pairs) == 50
        for pair in pairs:
            assert not (pair.index_a != 0 and pair.index_b != 0)
            assert np.isfinite(pair.label)

    def test_all_diverged_pool_rejected(self):
        scores = np.full(4, SENTINEL_SCORE)
        with pytest.raises(ValueError, match="diverged"):
            dynamic_pairs(scores, np.random.default_rng(0), 4)

    def test_clean_pool_rng_stream_unchanged(self):
        """Without divergence the draws must match the historical algorithm
        exactly, so existing seeded runs stay bitwise-identical."""
        scores = np.random.default_rng(3).random(6)
        rng_new = np.random.default_rng(42)
        pairs = dynamic_pairs(scores, rng_new, 10)
        rng_old = np.random.default_rng(42)
        count = len(scores)
        for pair in pairs:
            i = int(rng_old.integers(count))
            j = int(rng_old.integers(count - 1))
            if j >= i:
                j += 1
            assert (pair.index_a, pair.index_b) == (i, j)
        assert rng_new.bit_generator.state == rng_old.bit_generator.state

    def test_comparable_pair_indices_filters_only_diverged_pairs(self):
        scores = np.array([0.3, SENTINEL_SCORE, 0.1, SENTINEL_SCORE])
        index_a, index_b = comparable_pair_indices(scores)
        full_a, full_b = ordered_pair_indices(len(scores))
        assert len(index_a) == len(full_a) - 2  # (1,3) and (3,1) dropped
        for i, j in zip(index_a, index_b):
            assert not (is_sentinel_score(scores[i]) and is_sentinel_score(scores[j]))

    def test_comparable_pair_indices_clean_pool_uses_template(self):
        scores = np.array([0.3, 0.2, 0.1])
        index_a, index_b = comparable_pair_indices(scores)
        full_a, full_b = ordered_pair_indices(3)
        assert index_a is full_a and index_b is full_b

    def test_all_ordered_pairs_excludes_double_sentinels(self):
        scores = np.array([0.5, SENTINEL_SCORE, SENTINEL_SCORE])
        pairs = all_ordered_pairs(scores)
        assert len(pairs) == 4  # 6 ordered pairs minus the 2 sentinel-only
        assert all(np.isfinite(p.label) for p in pairs)

    def test_scored_arch_hyper_accepts_sentinel_rejects_nan(self):
        (ah,) = _candidates(1)
        ScoredArchHyper(ah, SENTINEL_SCORE)  # finite: allowed
        with pytest.raises(ValueError):
            ScoredArchHyper(ah, float("nan"))
        with pytest.raises(ValueError):
            ScoredArchHyper(ah, float("inf"))


class TestSearchLoops:
    def test_search_trace_clamps_non_finite_scores(self):
        candidates = _candidates(3)
        trace = SearchTrace(candidates, [0.5, float("nan"), float("inf")])
        assert trace.diverged == 2
        assert trace.best is candidates[0]
        assert np.isfinite(trace.scores).all()

    def test_search_trace_all_diverged_raises(self):
        trace = SearchTrace(_candidates(2), [float("nan"), SENTINEL_SCORE])
        with pytest.raises(DivergenceError):
            trace.best

    def test_evolutionary_rank_survives_nan_wins(self):
        space = JointSearchSpace(hyper_space=TINY_HYPER)

        def compare(candidates):
            n = len(candidates)
            wins = np.ones((n, n)) * 0.5
            wins[0, :] = np.nan  # a poisoned comparator row
            return wins

        search = EvolutionarySearch(
            space,
            compare,
            EvolutionConfig(
                initial_samples=4, population_size=2, generations=1,
                offspring_per_generation=2, top_k=2,
            ),
            seed=0,
        )
        result = search.run()
        assert len(result.top_candidates) == 2


class TestDataValidation:
    def _values(self):
        return np.zeros((3, 5, 1), dtype=np.float32)

    def test_clean_data_passes(self):
        CTSData("ok", self._values(), np.ones((3, 3), dtype=np.float32), "test")

    def test_nan_values_rejected_with_report(self):
        values = self._values()
        values[1, 2, 0] = np.nan
        values[2, 4, 0] = np.inf
        with pytest.raises(NonFiniteDataError) as info:
            CTSData("corrupt", values, np.ones((3, 3), dtype=np.float32), "test")
        err = info.value
        assert err.report.bad_count == 2
        assert err.report.sensors == (1, 2)
        assert err.report.timesteps == (2, 4)
        assert "sensors" in str(err)

    def test_non_finite_adjacency_rejected(self):
        adj = np.ones((3, 3), dtype=np.float32)
        adj[0, 1] = np.nan
        with pytest.raises(NonFiniteDataError, match="adjacency"):
            CTSData("corrupt", self._values(), adj, "test")

    def test_non_finite_report_clean_is_none(self):
        assert non_finite_report(self._values()) is None

    def test_sanitize_values_raise(self):
        values = self._values()
        values[0, 0, 0] = np.nan
        with pytest.raises(NonFiniteDataError):
            sanitize_values(values, "bad")

    def test_sanitize_values_impute(self):
        values = self._values()
        values[:, :, 0] = 2.0
        values[1, 3, 0] = np.nan
        clean, report = sanitize_values(values, "fixable", on_non_finite="impute")
        assert report is not None and report.bad_count == 1
        assert clean[1, 3, 0] == 2.0  # series mean of the finite timesteps
        # The repaired array constructs a valid dataset.
        CTSData("fixed", clean, np.ones((3, 3), dtype=np.float32), "test")

    def test_sanitize_clean_passthrough(self):
        values = self._values()
        clean, report = sanitize_values(values, "ok")
        assert clean is values
        assert report is None

    def test_impute_uses_per_series_mean(self):
        values = np.array(
            [[[1.0], [np.nan], [3.0]], [[10.0], [20.0], [np.inf]]], dtype=np.float64
        )
        clean = impute_non_finite(values)
        assert clean[0, 1, 0] == 2.0  # mean of 1 and 3
        assert clean[1, 2, 0] == 15.0  # mean of 10 and 20
        assert np.isfinite(clean).all()

    def test_impute_all_bad_slice_falls_back_to_zero(self):
        values = np.full((1, 3, 1), np.nan)
        clean = impute_non_finite(values)
        np.testing.assert_array_equal(clean, np.zeros((1, 3, 1)))

    def test_impute_clean_passthrough_identity(self):
        values = np.arange(6.0).reshape(1, 3, 2)
        assert impute_non_finite(values) is values


# Drawn as float64 then cast: every value is finite in float32 (max ~3.4e38).
extreme_float32 = st.floats(
    min_value=-3.0e38, max_value=3.0e38, allow_nan=False, allow_infinity=False
)


class TestGuardedOpsAtExtremes:
    """Property tests: guarded ops stay finite on float32-extreme inputs."""

    @given(st.lists(extreme_float32, min_size=2, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_softmax_finite_and_normalized(self, values):
        x = np.array(values, dtype=np.float32)
        out = ad.softmax(Tensor(x), axis=-1).data
        assert np.isfinite(out).all()
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-3)

    @given(st.lists(extreme_float32, min_size=2, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_log_softmax_never_nan(self, values):
        x = np.array(values, dtype=np.float32)
        out = ad.log_softmax(Tensor(x), axis=-1).data
        assert not np.isnan(out).any()
        assert (out <= 1e-6).all()  # log-probabilities are non-positive

    @given(st.lists(extreme_float32, min_size=1, max_size=8), st.data())
    @settings(max_examples=80, deadline=None)
    def test_bce_with_logits_finite_at_extreme_logits(self, values, data):
        logits = Tensor(np.array(values, dtype=np.float64), requires_grad=True)
        labels = np.array(
            data.draw(
                st.lists(
                    st.sampled_from([0.0, 1.0]),
                    min_size=len(values), max_size=len(values),
                )
            )
        )
        loss = bce_with_logits(logits, labels)
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    @given(st.lists(extreme_float32, min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_softmax_backward_finite(self, values):
        t = Tensor(np.array(values, dtype=np.float32), requires_grad=True)
        ad.softmax(t, axis=-1).sum().backward()
        assert np.isfinite(t.grad).all()
