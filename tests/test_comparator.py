"""Tests for the GIN encoder, AHC, T-AHC, pairing, curriculum, pre-training."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.comparator import (
    AHC,
    ComparisonPair,
    GINEncoder,
    PretrainConfig,
    PretrainHistory,
    TAHC,
    TaskSampleSet,
    all_ordered_pairs,
    curriculum_schedule,
    dynamic_pairs,
    evaluate_comparator,
    make_label,
    pretrain_tahc,
)
from repro.metrics import pairwise_accuracy
from repro.space import CANDIDATE_OPERATORS, JointSearchSpace, encode_batch

RNG = np.random.default_rng(0)
SPACE = JointSearchSpace()


def _sample_encodings(count, seed=0):
    batch = SPACE.sample_batch(count, np.random.default_rng(seed))
    return batch, encode_batch(batch)


class TestGIN:
    def test_output_shape(self):
        gin = GINEncoder(num_operator_types=5, embed_dim=16, num_layers=2)
        _, enc = _sample_encodings(4)
        out = gin(*enc)
        assert out.shape == (4, 16)

    def test_distinguishes_graphs(self):
        gin = GINEncoder(num_operator_types=5, embed_dim=16, num_layers=3)
        _, enc = _sample_encodings(2, seed=1)
        out = gin(*enc).numpy()
        assert not np.allclose(out[0], out[1])

    def test_hyper_vector_reaches_output(self):
        gin = GINEncoder(num_operator_types=5, embed_dim=16, num_layers=2)
        _, (adj, ops, hyper, mask) = _sample_encodings(1)
        base = gin(adj, ops, hyper, mask).numpy().copy()
        hyper2 = hyper.copy()
        hyper2[0, 0] = 1.0 - hyper2[0, 0]
        out = gin(adj, ops, hyper2, mask).numpy()
        assert not np.allclose(base, out)

    def test_padding_has_no_influence(self):
        """Changing op indices in padded rows must not change the output."""
        gin = GINEncoder(num_operator_types=5, embed_dim=16, num_layers=2)
        _, (adj, ops, hyper, mask) = _sample_encodings(1)
        base = gin(adj, ops, hyper, mask).numpy().copy()
        ops2 = ops.copy()
        ops2[mask == 0] = 2  # garbage in padding slots
        # padding op ids must be masked internally: recompute with -1 replaced
        out = gin(adj, np.where(mask == 0, -1, ops2), hyper, mask).numpy()
        np.testing.assert_allclose(out, base, rtol=1e-5)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            GINEncoder(num_operator_types=5, num_layers=0)

    def test_gradients_reach_embeddings(self):
        gin = GINEncoder(num_operator_types=5, embed_dim=8, num_layers=2)
        _, enc = _sample_encodings(3)
        gin(*enc).sum().backward()
        assert gin.operator_embedding.grad is not None
        assert gin.hyper_proj.weight.grad is not None


class TestAHC:
    def test_logits_shape(self):
        ahc = AHC(embed_dim=16, gin_layers=2, hidden_dim=16)
        _, enc_a = _sample_encodings(3, seed=1)
        _, enc_b = _sample_encodings(3, seed=2)
        assert ahc(enc_a, enc_b).shape == (3,)

    def test_learns_synthetic_ranking(self):
        """AHC must learn a rule as simple as 'bigger hidden dim is better'."""
        from repro.autodiff import sigmoid
        from repro.nn.loss import bce_with_logits
        from repro.optim import Adam

        rng = np.random.default_rng(0)
        candidates = SPACE.sample_batch(16, rng)
        scores = np.array([-ah.hyper.hidden_dim for ah in candidates], dtype=float)
        enc = encode_batch(candidates)
        ahc = AHC(embed_dim=16, gin_layers=2, hidden_dim=16, seed=0)
        optimizer = Adam(ahc.parameters(), lr=5e-3)
        for _ in range(60):
            pairs = dynamic_pairs(scores, rng, 32)
            ia = np.array([p.index_a for p in pairs])
            ib = np.array([p.index_b for p in pairs])
            labels = np.array([p.label for p in pairs], dtype=np.float32)
            logits = ahc(
                tuple(a[ia] for a in enc), tuple(a[ib] for a in enc)
            )
            loss = bce_with_logits(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        wins = ahc.predict_wins(candidates)
        assert pairwise_accuracy(wins, scores) > 0.8


class TestTAHC:
    def _model(self, seed=0):
        return TAHC(embed_dim=16, gin_layers=2, hidden_dim=16,
                    preliminary_dim=8, task_embed_dim=8, seed=seed)

    def _preliminary(self, seed=0):
        return np.random.default_rng(seed).standard_normal((4, 10, 8)).astype(np.float32)

    def test_logits_shape(self):
        model = self._model()
        _, enc_a = _sample_encodings(3, seed=1)
        _, enc_b = _sample_encodings(3, seed=2)
        emb = model.encode_task(self._preliminary())
        assert model(emb, enc_a, enc_b).shape == (3,)

    def test_task_conditioning_changes_output(self):
        model = self._model()
        _, enc_a = _sample_encodings(3, seed=1)
        _, enc_b = _sample_encodings(3, seed=2)
        with no_grad():
            out1 = model(model.encode_task(self._preliminary(0)), enc_a, enc_b).numpy()
            out2 = model(model.encode_task(self._preliminary(9)), enc_a, enc_b).numpy()
        assert not np.allclose(out1, out2)

    def test_win_matrix_properties(self):
        model = self._model()
        candidates, _ = _sample_encodings(5)
        wins = model.predict_wins(self._preliminary(), candidates)
        assert wins.shape == (5, 5)
        np.testing.assert_array_equal(np.diag(wins), 0.0)
        assert set(np.unique(wins)) <= {0.0, 1.0}

    def test_task_embedding_vector(self):
        model = self._model()
        vec = model.task_embedding_vector(self._preliminary())
        assert vec.shape == (8,)
        assert np.isfinite(vec).all()


class TestPairing:
    def test_make_label(self):
        assert make_label(0.1, 0.5) == 1.0  # lower error wins
        assert make_label(0.5, 0.1) == 0.0
        assert make_label(0.3, 0.3) == 1.0  # tie convention: >=

    def test_dynamic_pairs_no_self_pairs(self):
        scores = np.arange(5, dtype=float)
        pairs = dynamic_pairs(scores, np.random.default_rng(0), 100)
        assert all(p.index_a != p.index_b for p in pairs)
        assert len(pairs) == 100

    def test_dynamic_pairs_labels_match_scores(self):
        scores = np.array([0.1, 0.9, 0.5])
        for pair in dynamic_pairs(scores, np.random.default_rng(1), 50):
            assert pair.label == make_label(scores[pair.index_a], scores[pair.index_b])

    def test_dynamic_pairs_rejects_singleton(self):
        with pytest.raises(ValueError):
            dynamic_pairs(np.array([1.0]), np.random.default_rng(0), 5)

    def test_all_ordered_pairs_count(self):
        pairs = all_ordered_pairs(np.arange(4, dtype=float))
        assert len(pairs) == 12


class TestCurriculum:
    def test_starts_at_zero_ends_full(self):
        schedule = curriculum_schedule(total_random=10, epochs=9)
        assert schedule[0] == 0
        assert schedule[-1] == 10

    def test_monotone_nondecreasing(self):
        schedule = curriculum_schedule(7, 12)
        assert all(a <= b for a, b in zip(schedule, schedule[1:]))

    def test_single_epoch_gets_everything(self):
        assert curriculum_schedule(5, 1) == [5]

    def test_validation(self):
        with pytest.raises(ValueError):
            curriculum_schedule(5, 0)
        with pytest.raises(ValueError):
            curriculum_schedule(-1, 5)


class TestPretraining:
    def _synthetic_sample_sets(self, n_tasks=3, shared=5, extra=5):
        """Tasks whose ground truth is 'larger hidden dims win', with
        task-dependent tie-breaking so the task embedding matters."""
        rng = np.random.default_rng(0)
        shared_pool = SPACE.sample_batch(shared, rng)
        sets = []
        for t in range(n_tasks):
            own = SPACE.sample_batch(extra, rng)
            pool = shared_pool + own
            scores = np.array(
                [-ah.hyper.hidden_dim + 0.01 * t * ah.hyper.num_blocks for ah in pool]
            )
            preliminary = np.random.default_rng(100 + t).standard_normal(
                (4, 8, 8)
            ).astype(np.float32)
            sets.append(
                TaskSampleSet(
                    task_name=f"task{t}",
                    preliminary=preliminary,
                    arch_hypers=pool,
                    scores=scores,
                    shared_count=shared,
                )
            )
        return sets

    def test_pretraining_improves_accuracy(self):
        sets = self._synthetic_sample_sets()
        model = TAHC(embed_dim=16, gin_layers=2, hidden_dim=16,
                     preliminary_dim=8, task_embed_dim=8, seed=0)
        before = np.mean([evaluate_comparator(model, s) for s in sets])
        config = PretrainConfig(
            shared_samples=5, random_samples=5, epochs=25, pairs_per_task=24,
            lr=5e-3, patience=25,
        )
        history = pretrain_tahc(model, sets, config)
        after = np.mean([evaluate_comparator(model, s) for s in sets])
        assert isinstance(history, PretrainHistory)
        assert history.deltas[0] == 0  # curriculum starts shared-only
        assert after > before
        assert after > 0.75

    def test_sample_set_validation(self):
        with pytest.raises(ValueError):
            TaskSampleSet("x", np.zeros((1, 2, 3)), [], np.array([1.0]), 0)

    def test_pretrain_rejects_empty(self):
        model = TAHC(embed_dim=8, gin_layers=1, hidden_dim=8,
                     preliminary_dim=8, task_embed_dim=8)
        with pytest.raises(ValueError):
            pretrain_tahc(model, [], PretrainConfig())
