"""Tests for the trainer health monitor and non-finite-safe gradient clipping."""

import pickle

import numpy as np
import pytest

from repro.core import TrainConfig, build_forecaster, train_forecaster
from repro.core.health import (
    DivergenceError,
    HealthConfig,
    HealthMonitor,
    StepHealth,
)
from repro.data import CTSData
from repro.nn.linear import Linear
from repro.optim import Adam, clip_grad_norm, grad_norm
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


def _toy_task(t=200, seed=0, name="toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adj = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData(name, values, adj, "test"), p=6, q=3)


def _monitored(config=None, lr=0.1):
    model = Linear(2, 2, rng=np.random.default_rng(0))
    optimizer = Adam(model.parameters(), lr=lr)
    config = config or HealthConfig()
    return HealthMonitor(config, model, optimizer), model, optimizer


class TestHealthConfig:
    def test_defaults_valid(self):
        HealthConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_bad_steps": 0},
            {"max_rollbacks": -1},
            {"lr_backoff": 0.0},
            {"lr_backoff": 1.0},
            {"loss_explosion_factor": 1.0},
            {"snapshot_interval": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HealthConfig(**kwargs)


class TestHealthMonitor:
    def test_healthy_steps_pass(self):
        monitor, _, optimizer = _monitored()
        for step in range(5):
            assert monitor.check_loss(0, step, 1.0)
            assert monitor.check_grads(0, step, 0.5)
            monitor.step_ok()
        assert monitor.report.bad_steps == 0
        assert monitor.report.rollbacks == 0
        assert optimizer.lr == 0.1
        assert all(h.action == "ok" for h in monitor.report.history)

    def test_nan_loss_skipped_with_backoff(self):
        monitor, _, optimizer = _monitored(lr=0.1)
        assert monitor.check_loss(0, 0, 1.0)
        monitor.step_ok()
        assert not monitor.check_loss(0, 1, float("nan"))
        assert monitor.report.skipped_steps == 1
        assert optimizer.lr == pytest.approx(0.05)
        assert monitor.report.history[-1].action == "skip"

    def test_loss_explosion_is_bad_even_when_finite(self):
        monitor, _, _ = _monitored()
        assert monitor.check_loss(0, 0, 1.0)
        monitor.step_ok()
        assert not monitor.check_loss(0, 1, 1e7)  # factor 1e6 vs first loss 1.0

    def test_non_finite_grad_norm_skipped(self):
        monitor, _, _ = _monitored()
        assert monitor.check_loss(0, 0, 1.0)
        assert not monitor.check_grads(0, 0, float("inf"))
        assert monitor.report.skipped_steps == 1

    def test_lr_backoff_floors_at_min_lr(self):
        monitor, _, optimizer = _monitored(
            HealthConfig(max_bad_steps=100, min_lr=1e-3), lr=1e-2
        )
        for step in range(50):
            monitor.check_loss(0, step, float("nan"))
        assert optimizer.lr == 1e-3

    def test_rollback_restores_last_good_state(self):
        config = HealthConfig(max_bad_steps=2, snapshot_interval=1)
        monitor, model, optimizer = _monitored(config)
        assert monitor.check_loss(0, 0, 1.0)
        monitor.step_ok()  # snapshot of the current (good) weights
        good = model.weight.data.copy()
        model.weight.data[...] = 777.0  # poison, as a blown-up step would
        assert not monitor.check_loss(0, 1, float("nan"))
        assert not monitor.check_loss(0, 2, float("nan"))  # streak -> rollback
        np.testing.assert_array_equal(model.weight.data, good)
        assert monitor.report.rollbacks == 1
        assert monitor.report.history[-1].action == "rollback"

    def test_divergence_without_snapshot(self):
        monitor, _, _ = _monitored(HealthConfig(max_bad_steps=1))
        with pytest.raises(DivergenceError) as info:
            monitor.check_loss(0, 0, float("inf"))
        err = info.value
        assert err.history
        assert err.history[-1].action == "diverged"

    def test_divergence_after_rollback_budget(self):
        config = HealthConfig(max_bad_steps=1, max_rollbacks=1, snapshot_interval=1)
        monitor, _, _ = _monitored(config)
        monitor.check_loss(0, 0, 1.0)
        monitor.step_ok()
        assert not monitor.check_loss(0, 1, float("nan"))  # rollback #1
        assert monitor.report.rollbacks == 1
        with pytest.raises(DivergenceError):
            monitor.check_loss(0, 2, float("nan"))  # budget exhausted

    def test_history_is_bounded(self):
        config = HealthConfig(history_limit=4)
        monitor, _, _ = _monitored(config)
        for step in range(10):
            monitor.check_loss(0, step, 1.0)
            monitor.step_ok()
        assert len(monitor.report.history) == 4

    def test_divergence_error_is_picklable(self):
        err = DivergenceError(
            "boom", history=[StepHealth(0, 1, float("nan"), 0.0, "diverged")]
        )
        restored = pickle.loads(pickle.dumps(err))
        assert str(restored) == "boom"
        assert restored.history[0].action == "diverged"


class TestTrainerIntegration:
    def test_huge_lr_raises_divergence_error(self):
        task = _toy_task()
        ah = JointSearchSpace(hyper_space=TINY_HYPER).sample(
            np.random.default_rng(0)
        )
        model = build_forecaster(ah, task.data, task.horizon, seed=0)
        with pytest.raises(DivergenceError) as info:
            train_forecaster(
                model,
                task.prepared.train,
                task.prepared.val,
                TrainConfig(epochs=10, lr=1e3, patience=10),
            )
        assert info.value.history  # step provenance travels with the error

    def test_monitor_is_inert_on_healthy_runs(self):
        """A healthy monitored run must be bitwise-identical to an
        unmonitored one — the monitor only observes, never perturbs."""
        task = _toy_task()
        ah = JointSearchSpace(hyper_space=TINY_HYPER).sample(
            np.random.default_rng(0)
        )

        def run(health):
            model = build_forecaster(ah, task.data, task.horizon, seed=0)
            result = train_forecaster(
                model,
                task.prepared.train,
                task.prepared.val,
                TrainConfig(epochs=2, health=health),
            )
            return result, model.state_dict()

        monitored, state_a = run(HealthConfig())
        legacy, state_b = run(HealthConfig(enabled=False))
        assert monitored.train_losses == legacy.train_losses
        assert monitored.val_maes == legacy.val_maes
        assert monitored.health.bad_steps == 0
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])


class _Param:
    def __init__(self, grad):
        self.grad = np.asarray(grad, dtype=np.float64)


class TestClipGradNorm:
    def test_finite_clipping_unchanged(self):
        p = _Param([3.0, 4.0])  # norm 5
        total = clip_grad_norm([p], 1.0)
        assert total == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [0.6, 0.8])

    def test_below_threshold_untouched(self):
        p = _Param([0.3, 0.4])
        clip_grad_norm([p], 1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_nan_norm_does_not_scale(self):
        p = _Param([np.nan, 1.0])
        with np.errstate(invalid="ignore"):
            total = clip_grad_norm([p], 1.0)
        assert np.isnan(total)
        assert np.isnan(p.grad[0]) and p.grad[1] == 1.0  # untouched, not poisoned

    def test_inf_norm_does_not_scale(self):
        p = _Param([np.inf, 1.0])
        with np.errstate(over="ignore"):
            total = clip_grad_norm([p], 1.0)
        assert np.isinf(total)
        assert p.grad[1] == 1.0

    def test_overflowing_norm_does_not_zero_grads(self):
        # The squared sum overflows float64 even though each grad is finite;
        # scaling by max_norm/inf would silently zero every gradient.
        p = _Param([1e200, 1e200])
        total = clip_grad_norm([p], 1.0)
        assert np.isinf(total)
        assert p.grad[0] == 1e200

    def test_zero_norm_no_division(self):
        p = _Param([0.0, 0.0])
        total = clip_grad_norm([p], 1.0)
        assert total == 0.0
        np.testing.assert_array_equal(p.grad, [0.0, 0.0])

    def test_grad_norm_matches_manual(self):
        params = [_Param([3.0]), _Param([4.0])]
        assert grad_norm(params) == pytest.approx(5.0)

    def test_grad_norm_skips_gradless_params(self):
        class NoGrad:
            grad = None

        assert grad_norm([NoGrad(), _Param([2.0])]) == pytest.approx(2.0)
