"""Tests for deterministic RNG derivation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.seeding import derive_rng, spawn_seeds


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(42, "model", 3).random(5)
        b = derive_rng(42, "model", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = derive_rng(42, "model").random(5)
        b = derive_rng(42, "data").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_string_hash_is_stable(self):
        """String keys must hash identically across calls (no PYTHONHASHSEED)."""
        from repro.utils.seeding import _stable_string_hash

        assert _stable_string_hash("trainer") == _stable_string_hash("trainer")
        assert _stable_string_hash("a") != _stable_string_hash("b")

    @given(st.integers(0, 2**31 - 1), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_derivation_deterministic_property(self, seed, key):
        a = derive_rng(seed, key).integers(0, 1000, 3)
        b = derive_rng(seed, key).integers(0, 1000, 3)
        np.testing.assert_array_equal(a, b)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(7, 10)
        assert len(seeds) == 10
        assert seeds == spawn_seeds(7, 10)

    def test_seeds_are_distinct(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_all_nonnegative_ints(self):
        assert all(isinstance(s, int) and s >= 0 for s in spawn_seeds(3, 5))
