"""End-to-end tests of service observability.

Boots the same real stack as ``test_service.py`` — ephemeral-port HTTP
server, worker daemons, sqlite registry — but with an explicitly injected
:class:`~repro.obs.SpanBuffer` shared between API and daemons, and covers:

* ``GET /jobs/<id>/trace`` returns exactly that job's spans — including
  evaluator spans grafted at relay time with attempt numbers — and none
  from concurrently-running jobs, with two daemons draining interleaved
  submissions,
* exactly-once span grafting across claim → crash → recover_orphans →
  re-claim: the retried job's spans carry the new attempt number, the
  correlation id survives the requeue, and resumed (checkpointed)
  evaluations do not re-emit spans,
* queue-wait and execute-latency histograms populated by the daemon, and
  per-endpoint HTTP latency histograms populated by the API,
* ``GET /metrics?format=prom`` Prometheus text exposition over HTTP,
* ``GET /metrics/history`` backed by the :class:`MetricsSampler` and its
  bounded, downsampling retention,
* the ``GET /dash`` HTML status page,
* ``resolve_metrics_interval`` flag/env precedence and typed rejection.
"""

import urllib.error
import urllib.request

import pytest

from repro.experiments.config import SCALES
from repro.obs import SpanBuffer, global_registry
from repro.service import (
    METRICS_INTERVAL_ENV,
    Daemon,
    Engine,
    MetricsSampler,
    ServiceAPI,
    ServiceDB,
    resolve_metrics_interval,
)
from repro.utils.validation import ConfigError

from tests.test_service import (
    InterruptAfter,
    Service,
    _artifacts,
    _task_spec,
    cheap_eval,
)


class ObsService(Service):
    """The e2e stack with an injected span buffer and optional extra daemons."""

    def __init__(self, tmp_path, eval_fn=None, start_daemon=True, daemons=1):
        self.buffer = SpanBuffer()
        self.engine = Engine(
            _artifacts(),
            SCALES["smoke"],
            checkpoint_dir=tmp_path / "ckpt",
            artifact_dir=tmp_path / "artifacts",
            eval_fn=eval_fn,
            cache_enabled=False,
        )
        self.db = ServiceDB(tmp_path / "registry.sqlite")
        self.daemons = [
            Daemon(self.db, self.engine, poll_interval=0.01, span_buffer=self.buffer)
            for _ in range(daemons)
        ]
        self.daemon = self.daemons[0]
        if start_daemon:
            for daemon in self.daemons:
                daemon.start()
        self.api = ServiceAPI(self.db, self.engine, span_buffer=self.buffer).start()

    def close(self):
        self.api.stop()
        for daemon in self.daemons:
            daemon.stop()

    def raw_get(self, path):
        """(status, content-type, text) for non-JSON endpoints."""
        req = urllib.request.Request(self.address + path)
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return (
                    response.status,
                    response.headers.get("Content-Type", ""),
                    response.read().decode(),
                )
        except urllib.error.HTTPError as exc:
            return exc.code, exc.headers.get("Content-Type", ""), exc.read().decode()


COLLECT = {"kind": "collect", "options": {"n_samples": 6}}


class TestJobTrace:
    def test_trace_isolation_with_two_daemons(self, tmp_path):
        """The headline acceptance: two daemons, interleaved submissions,
        and /jobs/<id>/trace returns exactly one job's spans."""
        stack = ObsService(tmp_path, eval_fn=cheap_eval, daemons=2)
        try:
            # Interleave: both jobs are queued before either finishes, so
            # with two daemons their spans land in the shared buffer
            # interleaved.
            _, a = stack.request("/jobs", {**COLLECT, "task": _task_spec(seed=0)})
            _, b = stack.request(
                "/jobs", {**COLLECT, "task": _task_spec(seed=1, name="toy-b")}
            )
            job_a, job_b = a["job"]["id"], b["job"]["id"]
            assert job_a != job_b
            stack.wait_for(job_a)
            stack.wait_for(job_b)

            traces = {}
            for job_id in (job_a, job_b):
                status, body = stack.request(f"/jobs/{job_id}/trace")
                assert status == 200
                assert body["job"] == job_id
                assert body["status"] == "done"
                assert body["attempts"] == 1
                traces[job_id] = body["spans"]

            for job_id, other in ((job_a, job_b), (job_b, job_a)):
                spans = traces[job_id]
                assert spans, f"no spans for {job_id}"
                # Every span answers to this correlation id and none leaks
                # from the concurrently-running other job.
                assert all(span["corr"] == job_id for span in spans)
                assert all(
                    other not in str(span.get("attrs", {})) for span in spans
                )
                names = [span["name"] for span in spans]
                # The daemon's top-level job span, the executor span, and
                # the evaluator spans relayed from the unit of work.
                assert "job" in names and "execute" in names
                assert names.count("eval") == 6
                (job_span,) = [s for s in spans if s["name"] == "job"]
                assert job_span["attrs"]["job"] == job_id
                assert job_span["attrs"]["attempt"] == 1
                # Relayed eval spans were grafted with the attempt number
                # only the parent knows, under the eval-batch span.
                batch_ids = {s["id"] for s in spans if s["name"] == "eval-batch"}
                for span in spans:
                    if span["name"] == "eval":
                        assert span["attrs"]["attempt"] == 1
                        assert span["parent"] in batch_ids

            # Two jobs, six distinct candidates each: no span counted twice.
            for job_id in (job_a, job_b):
                candidates = [
                    s["attrs"]["candidate"]
                    for s in traces[job_id]
                    if s["name"] == "eval"
                ]
                assert len(candidates) == len(set(candidates)) == 6
        finally:
            stack.close()

    def test_trace_unknown_job_404(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval, start_daemon=False)
        try:
            status, body = stack.request("/jobs/nope/trace")
            assert status == 404 and "error" in body
        finally:
            stack.close()

    def test_crash_recovery_grafts_spans_exactly_once(self, tmp_path):
        """claim → crash → recover_orphans → re-claim: the retry's spans
        carry the new attempt, the correlation id survives the requeue, and
        checkpoint-resumed evaluations never re-emit their spans."""
        interrupting = InterruptAfter(cheap_eval, after=3)
        stack = ObsService(tmp_path, eval_fn=interrupting, start_daemon=False)
        try:
            _, submitted = stack.request("/jobs", {**COLLECT, "task": _task_spec()})
            job_id = submitted["job"]["id"]
            with pytest.raises(KeyboardInterrupt):
                stack.daemon.run_once()
            assert stack.db.get_job(job_id)["status"] == "running"

            # Attempt 1 died mid-batch: its job span was still emitted (the
            # span context manager closes on the way out) and tagged with
            # the error, but only the 3 finished evaluations were relayed.
            spans = stack.buffer.records(correlation=job_id)
            job_spans = [s for s in spans if s["name"] == "job"]
            assert [s["attrs"]["attempt"] for s in job_spans] == [1]
            assert job_spans[0]["attrs"]["error"] == "KeyboardInterrupt"
            assert len([s for s in spans if s["name"] == "eval"]) == 3

            # A fresh daemon (same registry, same buffer — the process
            # restarted, the service's buffer is shared) recovers and
            # finishes the job.
            recovered = stack.db.recover_orphans()
            assert [job["id"] for job in recovered] == [job_id]
            interrupting.after = float("inf")
            retry_daemon = Daemon(
                stack.db, stack.engine, poll_interval=0.01,
                span_buffer=stack.buffer,
            )
            assert retry_daemon.run_once()
            assert stack.db.get_job(job_id)["status"] == "done"

            status, body = stack.request(f"/jobs/{job_id}/trace")
            assert status == 200
            assert body["attempts"] == 2
            spans = body["spans"]
            # The job id doubles as the correlation id, so it survived the
            # requeue: both attempts' spans answer to one trace query...
            assert all(span["corr"] == job_id for span in spans)
            job_spans = [s for s in spans if s["name"] == "job"]
            assert [s["attrs"]["attempt"] for s in job_spans] == [1, 2]
            # ...and grafting is exactly-once: the 3 checkpointed scores
            # were resumed, not re-evaluated, so each of the 6 candidates
            # has exactly one eval span across both attempts.
            evals = [s for s in spans if s["name"] == "eval"]
            assert len(evals) == 6
            candidates = [s["attrs"]["candidate"] for s in evals]
            assert len(set(candidates)) == 6
        finally:
            stack.close()


class TestLatencyMetrics:
    def test_queue_wait_execute_and_http_histograms(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval)
        try:
            _, submitted = stack.request("/jobs", {**COLLECT, "task": _task_spec()})
            stack.wait_for(submitted["job"]["id"])
            assert stack.request("/health")[0] == 200
            snapshot = global_registry().snapshot()
            for name in (
                "service.job.queue_wait_seconds",
                "service.job.execute_seconds",
                "http.request.seconds",
                "http.get_health.seconds",
                "http.post_jobs.seconds",
            ):
                histogram = snapshot[name]
                assert histogram["kind"] == "histogram"
                assert histogram["count"] >= 1
                assert histogram["p50"] is not None
            # Execute time dominates queue wait for an immediately-claimed
            # job; both are real (non-negative) measurements.
            assert snapshot["service.job.queue_wait_seconds"]["min"] >= 0.0
            assert snapshot["service.job.execute_seconds"]["max"] > 0.0
        finally:
            stack.close()

    def test_rank_latency_and_cache_counters(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval, start_daemon=False)
        try:
            before = global_registry().snapshot()
            base = (before.get("service.rank.seconds") or {}).get("count", 0)
            status, _ = stack.request(
                "/rank", {"task": _task_spec(), "options": {"top_k": 2}}
            )
            assert status == 200
            snapshot = global_registry().snapshot()
            assert snapshot["service.rank.seconds"]["count"] == base + 1
            assert snapshot["engine.rank_cache.misses"]["value"] >= 1
        finally:
            stack.close()


class TestPrometheusEndpoint:
    def test_prom_text_exposition(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval, start_daemon=False)
        try:
            assert stack.request("/health")[0] == 200  # populate a histogram
            status, content_type, text = stack.raw_get("/metrics?format=prom")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert "# TYPE http_request_seconds histogram" in text
            assert 'http_request_seconds_bucket{le="+Inf"}' in text
            assert "http_request_seconds_count" in text
            # Deterministic ordering: metric families come out name-sorted.
            families = [
                line.split()[2]
                for line in text.splitlines()
                if line.startswith("# TYPE")
            ]
            assert families == sorted(families)
        finally:
            stack.close()

    def test_unknown_format_is_400(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval, start_daemon=False)
        try:
            status, body = stack.request("/metrics?format=xml")
            assert status == 400 and "format" in body["error"]
        finally:
            stack.close()


class TestMetricsHistory:
    def test_sampler_persists_and_endpoint_serves(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval, start_daemon=False)
        try:
            global_registry().counter("obs.history.test").inc(3)
            sampler = MetricsSampler(
                stack.db, interval=3600, source="test-sampler"
            )
            sampler.sample_once()
            sampler.sample_once()
            assert sampler.samples == 2

            status, body = stack.request("/metrics/history")
            assert status == 200
            history = body["history"]
            assert len(history) == 2
            # Oldest first, each row a full registry snapshot with its
            # source tag and timestamp.
            assert history[0]["ts"] <= history[1]["ts"]
            for row in history:
                assert row["source"] == "test-sampler"
                assert row["metrics"]["obs.history.test"]["value"] >= 3

            status, body = stack.request("/metrics/history?limit=1")
            assert status == 200 and len(body["history"]) == 1
            assert body["history"][0]["ts"] == history[1]["ts"]

            cutoff = history[1]["ts"]
            status, body = stack.request(f"/metrics/history?since={cutoff}")
            assert status == 200
            assert all(row["ts"] >= cutoff for row in body["history"])
        finally:
            stack.close()

    @pytest.mark.parametrize("query", ["?limit=0", "?limit=x", "?since=abc"])
    def test_bad_history_queries_are_400(self, tmp_path, query):
        stack = ObsService(tmp_path, eval_fn=cheap_eval, start_daemon=False)
        try:
            status, body = stack.request("/metrics/history" + query)
            assert status == 400 and "error" in body
        finally:
            stack.close()

    def test_retention_downsamples_oldest_half(self, tmp_path):
        db = ServiceDB(tmp_path / "registry.sqlite")
        for i in range(40):
            db.record_metrics({"i": {"kind": "gauge", "value": i}}, source="s")
        deleted = db.prune_metrics_history(max_rows=20)
        assert deleted > 0
        rows = db.metrics_history(limit=1000)
        assert len(rows) <= 20
        # The newest row always survives pruning; history thins from the
        # oldest end instead of truncating.
        assert rows[-1]["metrics"]["i"]["value"] == 39
        assert db.prune_metrics_history(max_rows=20) == 0

    def test_disabled_sampler_never_starts(self, tmp_path):
        db = ServiceDB(tmp_path / "registry.sqlite")
        sampler = MetricsSampler(db, interval=0)
        assert not sampler.enabled
        assert sampler.start()._thread is None
        sampler.stop()
        assert db.metrics_history() == []


class TestDashboard:
    def test_dash_serves_html_status_page(self, tmp_path):
        stack = ObsService(tmp_path, eval_fn=cheap_eval)
        try:
            _, submitted = stack.request("/jobs", {**COLLECT, "task": _task_spec()})
            stack.wait_for(submitted["job"]["id"])
            status, content_type, text = stack.raw_get("/dash")
            assert status == 200
            assert content_type.startswith("text/html")
            for section in ("Jobs", "Workers", "Latency", "Recent traces"):
                assert section in text
            # The finished job shows up in the counts and its spans in the
            # recent-traces panel.
            assert "queue depth" in text
            assert submitted["job"]["id"] in text
            assert "execute" in text
        finally:
            stack.close()


class TestMetricsIntervalConfig:
    def test_explicit_value_beats_env(self, monkeypatch):
        monkeypatch.setenv(METRICS_INTERVAL_ENV, "7.5")
        assert resolve_metrics_interval(2.0) == 2.0
        assert resolve_metrics_interval() == 7.5
        assert resolve_metrics_interval(0) == 0.0

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(METRICS_INTERVAL_ENV, raising=False)
        assert resolve_metrics_interval() == 30.0

    @pytest.mark.parametrize("env", ["nope", "1h", "[]"])
    def test_malformed_env_is_config_error(self, monkeypatch, env):
        monkeypatch.setenv(METRICS_INTERVAL_ENV, env)
        with pytest.raises(ConfigError):
            resolve_metrics_interval()

    @pytest.mark.parametrize("value", [-1, float("nan"), float("inf")])
    def test_invalid_values_are_config_error(self, value):
        with pytest.raises(ConfigError):
            resolve_metrics_interval(value)
