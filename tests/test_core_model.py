"""Tests for ST-blocks, the CTS forecaster, and the training loop."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import (
    CTSForecaster,
    STBlock,
    TrainConfig,
    build_forecaster,
    evaluate_forecaster,
    predict,
    train_forecaster,
)
from repro.data import CTSData, make_windows, split_windows
from repro.operators import OperatorContext
from repro.space import ArchHyper, Architecture, Edge, HyperParameters


def _simple_arch(c=3):
    edges = [Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn")]
    for target in range(3, c):
        edges.append(Edge(target - 1, target, "skip"))
    return Architecture(num_nodes=c, edges=tuple(edges))


def _hyper(c=3, **overrides):
    defaults = dict(
        num_blocks=1, num_nodes=c, hidden_dim=8, output_dim=8, output_mode=0, dropout=0
    )
    defaults.update(overrides)
    return HyperParameters(**defaults)


def _arch_hyper(c=3, **overrides):
    return ArchHyper(arch=_simple_arch(c), hyper=_hyper(c, **overrides))


def _sine_data(n=4, t=160, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    phases = rng.uniform(0, 2 * np.pi, size=(n, 1))
    values = np.sin(2 * np.pi * steps / 24 + phases) + 0.05 * rng.standard_normal((n, t))
    return CTSData("sine", values[..., None].astype(np.float32), np.ones((n, n), np.float32), "test")


class TestSTBlock:
    def _context(self, n=4):
        return OperatorContext(hidden_dim=8, n_nodes=n, rng=np.random.default_rng(0))

    def test_output_shape(self):
        block = STBlock(_simple_arch(), self._context())
        out = block(Tensor(np.random.default_rng(0).standard_normal((2, 8, 4, 10))))
        assert out.shape == (2, 8, 4, 10)

    def test_output_mode_sum_differs_from_last(self):
        arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(0, 2, "gdcc"), Edge(1, 2, "skip")))
        ctx = self._context()
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((1, 8, 4, 6)).astype(np.float32))
        last = STBlock(arch, ctx, output_mode=0)
        total = STBlock(arch, ctx, output_mode=1)
        total.load_state_dict(last.state_dict())
        assert not np.allclose(last(x).data, total(x).data)

    def test_rejects_bad_output_mode(self):
        with pytest.raises(ValueError):
            STBlock(_simple_arch(), self._context(), output_mode=2)

    def test_multi_incoming_edges_summed(self):
        arch = Architecture(3, (Edge(0, 1, "skip"), Edge(0, 2, "skip"), Edge(1, 2, "skip")))
        block = STBlock(arch, self._context())
        x = Tensor(np.ones((1, 8, 4, 5), dtype=np.float32))
        # h1 = x; h2 = x + h1 = 2x
        np.testing.assert_allclose(block(x).data, 2.0, rtol=1e-6)


class TestForecaster:
    def test_output_shape_multi_step(self):
        model = CTSForecaster(_arch_hyper(), n_nodes=5, n_features=1, horizon=6)
        out = model(np.random.default_rng(0).standard_normal((3, 12, 5, 1)).astype(np.float32))
        assert out.shape == (3, 6, 5, 1)

    def test_output_shape_multi_feature(self):
        model = CTSForecaster(_arch_hyper(), n_nodes=4, n_features=2, horizon=3)
        out = model(np.zeros((2, 8, 4, 2), dtype=np.float32))
        assert out.shape == (2, 3, 4, 2)

    def test_deterministic_construction(self):
        a = CTSForecaster(_arch_hyper(), 4, 1, 3, seed=7)
        b = CTSForecaster(_arch_hyper(), 4, 1, 3, seed=7)
        np.testing.assert_array_equal(
            a.input_proj.weight.data, b.input_proj.weight.data
        )

    def test_num_blocks_respected(self):
        model = CTSForecaster(_arch_hyper(num_blocks=3), 4, 1, 2)
        assert len(model.blocks) == 3

    def test_dropout_hyper_controls_randomness(self):
        ah = _arch_hyper(dropout=1)
        model = CTSForecaster(ah, 4, 1, 2, seed=0)
        model.train()
        x = np.random.default_rng(0).standard_normal((2, 8, 4, 1)).astype(np.float32)
        out1 = model(x).data.copy()
        out2 = model(x).data
        assert not np.allclose(out1, out2)
        model.eval()
        out3 = model(x).data
        out4 = model(x).data
        np.testing.assert_array_equal(out3, out4)

    def test_build_forecaster_uses_graph(self):
        data = _sine_data()
        model = build_forecaster(_arch_hyper(), data, horizon=4)
        assert model.horizon == 4

    def test_gradients_flow_end_to_end(self):
        model = CTSForecaster(_arch_hyper(), 4, 1, 2)
        x = np.random.default_rng(0).standard_normal((2, 8, 4, 1)).astype(np.float32)
        model(x).sum().backward()
        named = dict(model.named_parameters())
        assert named["input_proj.weight"].grad is not None
        assert named["out_head.weight"].grad is not None


class TestTrainer:
    def _windows(self):
        data = _sine_data()
        windows = make_windows(data, p=12, q=4)
        return split_windows(windows, (7, 1, 2))

    def test_training_reduces_loss(self):
        train, val, _ = self._windows()
        model = build_forecaster(_arch_hyper(), _sine_data(), horizon=4)
        result = train_forecaster(
            model, train, val, TrainConfig(epochs=8, batch_size=16, patience=8)
        )
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.best_val_mae < 1.0  # sine amplitude is 1: must beat naive

    def test_early_stopping_restores_best_state(self):
        train, val, _ = self._windows()
        model = build_forecaster(_arch_hyper(), _sine_data(), horizon=4)
        result = train_forecaster(
            model, train, val, TrainConfig(epochs=6, batch_size=16, patience=2)
        )
        final_val = evaluate_forecaster(model, val).mae
        assert final_val == pytest.approx(result.best_val_mae, rel=1e-4)

    def test_predict_shapes(self):
        train, val, test = self._windows()
        model = build_forecaster(_arch_hyper(), _sine_data(), horizon=4)
        preds = predict(model, test)
        assert preds.shape == test.y.shape

    def test_evaluate_with_inverse_transform(self):
        train, val, _ = self._windows()
        model = build_forecaster(_arch_hyper(), _sine_data(), horizon=4)
        scaled = evaluate_forecaster(model, val)
        rescaled = evaluate_forecaster(model, val, inverse=lambda a: a * 10.0)
        assert rescaled.mae == pytest.approx(10 * scaled.mae, rel=1e-4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(patience=0)
