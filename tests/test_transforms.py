"""Tests for time series augmentations, including failure injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transforms import (
    jitter,
    magnitude_scale,
    missing_blocks,
    random_crop,
    timestamp_mask,
)

RNG = np.random.default_rng(0)


def _series(t=40, f=2):
    return RNG.normal(5, 2, size=(3, t, f))


class TestJitter:
    def test_preserves_shape(self):
        x = _series()
        assert jitter(x, np.random.default_rng(0)).shape == x.shape

    def test_noise_scales_with_sigma(self):
        x = _series()
        small = jitter(x, np.random.default_rng(1), sigma=0.01)
        large = jitter(x, np.random.default_rng(1), sigma=0.5)
        assert np.abs(large - x).mean() > np.abs(small - x).mean()


class TestMagnitudeScale:
    def test_scales_channels_independently(self):
        x = np.ones((1, 10, 3))
        out = magnitude_scale(x, np.random.default_rng(0), sigma=0.3)
        channel_values = {round(float(out[0, 0, c]), 6) for c in range(3)}
        assert len(channel_values) == 3

    def test_preserves_shape(self):
        x = _series()
        assert magnitude_scale(x, np.random.default_rng(0)).shape == x.shape


class TestRandomCrop:
    def test_crop_length(self):
        out = random_crop(_series(t=40), np.random.default_rng(0), crop_length=16)
        assert out.shape[-2] == 16

    def test_crop_is_contiguous_slice(self):
        x = np.arange(20.0).reshape(1, 20, 1)
        out = random_crop(x, np.random.default_rng(3), crop_length=5)
        flat = out[0, :, 0]
        np.testing.assert_allclose(np.diff(flat), 1.0)

    def test_invalid_length_raises(self):
        with pytest.raises(ValueError):
            random_crop(_series(t=10), np.random.default_rng(0), crop_length=11)

    @given(st.integers(1, 30), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_crop_always_within_bounds(self, crop, seed):
        x = _series(t=30)
        out = random_crop(x, np.random.default_rng(seed), crop_length=crop)
        assert out.shape[-2] == crop


class TestMasking:
    def test_mask_rate_zero_is_identity(self):
        x = _series()
        result = timestamp_mask(x, np.random.default_rng(0), 0.0)
        np.testing.assert_array_equal(result.values, x)
        assert result.mask.all()

    def test_mask_drops_roughly_rate_as_nan(self):
        x = np.ones((10, 100, 1))
        result = timestamp_mask(x, np.random.default_rng(0), rate=0.3)
        dropped = np.isnan(result.values).mean()
        assert 0.2 < dropped < 0.4
        np.testing.assert_array_equal(np.isnan(result.values), ~result.mask)
        np.testing.assert_array_equal(result.values[result.mask], x[result.mask])

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            timestamp_mask(_series(), np.random.default_rng(0), rate=1.0)


class TestMissingBlocks:
    def test_injects_nan_blocks_with_mask(self):
        x = np.ones((2, 50, 1))
        result = missing_blocks(x, np.random.default_rng(0), n_blocks=2, block_length=5)
        assert np.isnan(result.values).any()
        assert result.values.shape == x.shape
        np.testing.assert_array_equal(np.isnan(result.values), ~result.mask)

    def test_blocks_hit_every_series(self):
        x = np.ones((3, 50, 1))
        result = missing_blocks(x, np.random.default_rng(0), n_blocks=1, block_length=5)
        per_series = (~result.mask).reshape(3, -1).sum(axis=1)
        assert (per_series == per_series[0]).all() and per_series[0] == 5

    def test_short_series_whole_axis_block(self):
        # time <= block_length used to make the start range degenerate
        x = np.ones((2, 3, 1))
        result = missing_blocks(x, np.random.default_rng(0), n_blocks=1, block_length=8)
        assert np.isnan(result.values).all()
        assert not result.mask.any()

    def test_pipeline_survives_outages(self):
        """A forecaster must stay finite when fed outage-corrupted data."""
        from repro.core import build_forecaster
        from repro.data import CTSData
        from repro.data.transforms import impute_missing
        from repro.space import JointSearchSpace, HyperSpace

        rng = np.random.default_rng(0)
        result = missing_blocks(
            np.abs(RNG.normal(10, 2, size=(4, 80, 1))), rng, n_blocks=5, block_length=6
        )
        values = impute_missing(result.values, result.mask).astype(np.float32)
        data = CTSData(
            "corrupted", values, np.ones((4, 4), np.float32), "test", mask=result.mask
        )
        space = JointSearchSpace(
            hyper_space=HyperSpace(num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,),
                                   output_dims=(8,), output_modes=(0,), dropout=(0,))
        )
        model = build_forecaster(space.sample(rng), data, horizon=3)
        out = model(values.transpose(1, 0, 2)[None, :6])
        assert np.isfinite(out.numpy()).all()
