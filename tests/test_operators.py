"""Tests for the candidate S/T operators."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data.graph import gaussian_kernel_adjacency, random_sensor_positions, transition_matrix
from repro.operators import (
    DGCN,
    GDCC,
    Identity,
    InformerSpatial,
    InformerTemporal,
    OPERATOR_REGISTRY,
    OperatorContext,
    STOperator,
    build_operator,
    graph_propagate,
    register_operator,
)

B, H, N, T = 2, 8, 5, 12
RNG = np.random.default_rng(0)


def _context(dropout=0.0, supports=True):
    adj = gaussian_kernel_adjacency(random_sensor_positions(N, np.random.default_rng(1)))
    sups = [transition_matrix(adj), transition_matrix(adj.T)] if supports else []
    return OperatorContext(
        hidden_dim=H,
        n_nodes=N,
        supports=sups,
        dropout_rate=dropout,
        rng=np.random.default_rng(2),
    )


def _latent():
    return Tensor(RNG.standard_normal((B, H, N, T)).astype(np.float32))


class TestRegistry:
    def test_all_paper_operators_registered(self):
        assert set(OPERATOR_REGISTRY) >= {"gdcc", "inf_t", "dgcn", "inf_s", "skip"}

    def test_build_operator(self):
        op = build_operator("gdcc", _context())
        assert isinstance(op, GDCC)

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            build_operator("conv9000", _context())

    def test_register_new_operator(self):
        class Doubler(STOperator):
            name = "doubler_test"

            def forward(self, x):
                return x * 2.0

        register_operator(Doubler)
        try:
            op = build_operator("doubler_test", _context())
            x = _latent()
            np.testing.assert_allclose(op(x).data, 2 * x.data)
        finally:
            del OPERATOR_REGISTRY["doubler_test"]

    def test_register_rejects_unnamed(self):
        class Bad(STOperator):
            pass

        with pytest.raises(ValueError):
            register_operator(Bad)


class TestShapesAndGradients:
    @pytest.mark.parametrize("name", ["gdcc", "inf_t", "dgcn", "inf_s", "skip"])
    def test_shape_preserved(self, name):
        op = build_operator(name, _context())
        out = op(_latent())
        assert out.shape == (B, H, N, T)

    @pytest.mark.parametrize("name", ["gdcc", "inf_t", "dgcn", "inf_s"])
    def test_gradients_reach_parameters(self, name):
        op = build_operator(name, _context())
        out = op(_latent())
        out.sum().backward()
        grads = [p.grad for p in op.parameters()]
        assert grads, f"{name} has no parameters"
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


class TestGDCC:
    def test_causal(self):
        op = GDCC(_context())
        op.eval()
        x = RNG.standard_normal((1, H, N, T)).astype(np.float32)
        base = op(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[..., -1] += 10.0
        out = op(Tensor(x2)).data
        np.testing.assert_allclose(out[..., :-1], base[..., :-1], rtol=1e-4)

    def test_gating_bounds_output(self):
        """tanh*sigmoid keeps magnitudes below 1."""
        op = GDCC(_context())
        op.eval()
        out = op(Tensor(100.0 * RNG.standard_normal((1, H, N, T)).astype(np.float32)))
        assert np.abs(out.data).max() <= 1.0 + 1e-5


class TestDGCN:
    def test_graph_propagate_matches_einsum(self):
        x = RNG.standard_normal((B, H, N, T))
        support = RNG.random((N, N))
        out = graph_propagate(Tensor(x), Tensor(support)).data
        expected = np.einsum("nm,bhmt->bhnt", support, x)
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_adaptive_adjacency_is_stochastic(self):
        op = DGCN(_context())
        adaptive = op.adaptive_adjacency().data
        np.testing.assert_allclose(adaptive.sum(axis=-1), 1.0, rtol=1e-5)
        assert (adaptive >= 0).all()

    def test_works_without_predefined_supports(self):
        """Self-adaptive adjacency alone suffices (e.g. Electricity)."""
        op = DGCN(_context(supports=False))
        assert op(_latent()).shape == (B, H, N, T)

    def test_isolated_node_unaffected_by_others(self):
        """With identity supports and no mixing, propagation respects the graph."""
        support = np.eye(N, dtype=np.float32)
        x = RNG.standard_normal((1, H, N, T))
        out = graph_propagate(Tensor(x), Tensor(support)).data
        np.testing.assert_allclose(out, x, rtol=1e-5)


class TestInformer:
    def test_inf_t_mixes_time_not_space(self):
        """INF-T output at node n must not depend on other nodes' inputs."""
        op = InformerTemporal(_context())
        op.eval()
        x = RNG.standard_normal((1, H, N, T)).astype(np.float32)
        base = op(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[:, :, 0, :] += 5.0  # perturb node 0 only
        out = op(Tensor(x2)).data
        np.testing.assert_allclose(out[:, :, 1:, :], base[:, :, 1:, :], rtol=1e-4)
        assert not np.allclose(out[:, :, 0, :], base[:, :, 0, :])

    def test_inf_s_mixes_space_not_time(self):
        """INF-S output at time t must not depend on other time steps."""
        op = InformerSpatial(_context())
        op.eval()
        x = RNG.standard_normal((1, H, N, T)).astype(np.float32)
        base = op(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[:, :, :, 0] += 5.0  # perturb time 0 only
        out = op(Tensor(x2)).data
        np.testing.assert_allclose(out[:, :, :, 1:], base[:, :, :, 1:], rtol=1e-4)
        assert not np.allclose(out[:, :, :, 0], base[:, :, :, 0])


class TestIdentity:
    def test_passthrough(self):
        op = Identity(_context())
        x = _latent()
        np.testing.assert_array_equal(op(x).data, x.data)

    def test_no_parameters(self):
        assert list(Identity(_context()).parameters()) == []


class TestContextValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            OperatorContext(hidden_dim=0, n_nodes=3)

    def test_rejects_bad_support_shape(self):
        with pytest.raises(ValueError):
            OperatorContext(hidden_dim=4, n_nodes=3, supports=[np.eye(5)])
