"""Trace round-trip across process-pool workers.

Satellite invariants of the telemetry PR:

* serial and pool backends produce traces that agree on span counts — the
  relay makes parallel evaluations appear exactly where serial ones would,
* a crashed-then-retried worker evaluation appears in the trace exactly
  once, with the retry attempt recorded (the crashed attempt's spans die
  with the worker),
* enabling tracing never changes a score, bitwise,
* a written trace renders through the ``repro trace report`` CLI.
"""

from collections import Counter

import pytest

from repro.cli import main as cli_main
from repro.obs import configure_tracing, load_trace
from repro.runtime import ProxyEvaluator

from .test_faults import (
    FAULT_BUDGET_ENV,
    _candidates,
    _no_sleep_policy,
    _toy_task,
    cheap_eval,
    crashing_eval,
    fault_env,  # noqa: F401  (fixture re-export)
)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    configure_tracing(None)
    yield
    configure_tracing(None)


def _traced_run(path, workers, eval_fn=cheap_eval, retry_policy=None, count=4):
    configure_tracing(path)
    try:
        evaluator = ProxyEvaluator(
            workers=workers, cache=None, eval_fn=eval_fn, retry_policy=retry_policy
        )
        scores = evaluator.evaluate_many(_candidates(count), _toy_task())
    finally:
        configure_tracing(None)
    return scores, load_trace(path)


class TestSerialVsPoolParity:
    def test_span_counts_agree(self, tmp_path):
        serial_scores, serial_trace = _traced_run(tmp_path / "serial.jsonl", 1)
        pool_scores, pool_trace = _traced_run(tmp_path / "pool.jsonl", 2)
        assert serial_scores == pool_scores
        serial_counts = Counter(s["name"] for s in serial_trace.spans)
        pool_counts = Counter(s["name"] for s in pool_trace.spans)
        assert serial_counts == pool_counts
        assert serial_counts["eval"] == 4
        assert serial_counts["eval-batch"] == 1

    def test_pool_worker_spans_graft_under_parent_batch(self, tmp_path):
        _, trace = _traced_run(tmp_path / "pool.jsonl", 2)
        batch = [s for s in trace.spans if s["name"] == "eval-batch"]
        evals = [s for s in trace.spans if s["name"] == "eval"]
        assert len(batch) == 1
        assert all(s["parent"] == batch[0]["id"] for s in evals)
        # Worker spans carry their own pid, distinct from the parent's.
        assert all(s["pid"] != batch[0]["pid"] for s in evals)

    def test_eval_spans_carry_candidate_and_attempt(self, tmp_path):
        _, trace = _traced_run(tmp_path / "serial.jsonl", 1)
        evals = [s for s in trace.spans if s["name"] == "eval"]
        assert len(evals) == 4
        for record in evals:
            assert record["attrs"]["attempt"] == 1
            assert "candidate" in record["attrs"]


class TestCrashedWorkerRetry:
    def test_pool_retry_records_attempt_and_fingerprint(self, fault_env, tmp_path):  # noqa: F811
        from .test_faults import flaky_eval

        fault_env.setenv(FAULT_BUDGET_ENV, "1")
        scores, trace = _traced_run(
            tmp_path / "flaky-pool.jsonl",
            workers=2,
            eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
            count=3,
        )
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(_candidates(3), _toy_task())
        evals = [s for s in trace.spans if s["name"] == "eval"]
        # One span per job: the failed attempt's spans are never relayed.
        assert len(evals) == 3
        by_candidate = Counter(s["attrs"]["candidate"] for s in evals)
        assert all(count == 1 for count in by_candidate.values())
        # Exactly one evaluation needed a retry, and it is recorded.
        assert sorted(s["attrs"]["attempt"] for s in evals) == [1, 1, 2]
        assert all("fingerprint" in s["attrs"] for s in evals)

    def test_killed_worker_spans_appear_exactly_once(self, fault_env, tmp_path):  # noqa: F811
        # A hard worker death breaks the pool; the evaluator degrades the
        # remaining jobs to the serial backend.  The dead worker's spans die
        # with it, so every evaluation still appears exactly once.
        fault_env.setenv(FAULT_BUDGET_ENV, "1")
        scores, trace = _traced_run(
            tmp_path / "crash.jsonl",
            workers=2,
            eval_fn=crashing_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
            count=3,
        )
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(_candidates(3), _toy_task())
        evals = [s for s in trace.spans if s["name"] == "eval"]
        assert len(evals) == 3
        by_candidate = Counter(s["attrs"]["candidate"] for s in evals)
        assert all(count == 1 for count in by_candidate.values())

    def test_serial_retry_also_records_attempt(self, fault_env, tmp_path):  # noqa: F811
        from .test_faults import flaky_eval

        fault_env.setenv(FAULT_BUDGET_ENV, "1")
        _, trace = _traced_run(
            tmp_path / "flaky.jsonl",
            workers=1,
            eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
            count=2,
        )
        evals = [s for s in trace.spans if s["name"] == "eval"]
        assert len(evals) == 2
        assert sorted(s["attrs"]["attempt"] for s in evals) == [1, 2]


class TestTracingIsInert:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_scores_bitwise_identical_with_and_without_trace(self, tmp_path, workers):
        untraced = ProxyEvaluator(workers=workers, cache=None, eval_fn=cheap_eval)
        plain = untraced.evaluate_many(_candidates(4), _toy_task())
        traced, _ = _traced_run(tmp_path / "traced.jsonl", workers)
        assert plain == traced

    def test_queue_wait_and_compute_split_in_registry(self, tmp_path):
        evaluator = ProxyEvaluator(workers=2, cache=None, eval_fn=cheap_eval)
        evaluator.evaluate_many(_candidates(4), _toy_task())
        snap = evaluator.stats.registry.snapshot()
        assert snap["eval.compute_seconds"]["value"] > 0.0
        assert snap["eval.queue_wait_seconds"]["value"] >= 0.0
        assert evaluator.stats.compute_seconds == pytest.approx(
            snap["eval.compute_seconds"]["value"]
        )
        assert "(compute " in evaluator.stats.report()


class TestTraceReportCLI:
    def test_report_renders_written_trace(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _traced_run(path, 1)
        assert cli_main(["trace", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== per-stage rollup ==" in out
        assert "eval-batch" in out
        assert "== candidate timeline ==" in out

    def test_report_max_depth(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _traced_run(path, 1)
        assert cli_main(["trace", "report", str(path), "--max-depth", "0"]) == 0
        out = capsys.readouterr().out
        tree = out.split("== span tree ==")[1].split("== candidate timeline ==")[0]
        assert "eval-batch" in tree  # the root survives
        assert "\n  " not in tree.strip("\n")  # children below depth 0 pruned

    def test_report_rollup_prints_quantile_columns(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _traced_run(path, 1)
        assert cli_main(["trace", "report", str(path)]) == 0
        rollup = capsys.readouterr().out.split("== per-stage rollup ==")[1]
        header = rollup.splitlines()[1]
        assert "p50 s" in header and "p99 s" in header

    def test_report_job_filter(self, tmp_path, capsys):
        from repro.obs import correlation_scope, file_tracer, tracer_scope

        path = tmp_path / "service.jsonl"
        tracer = file_tracer(path)
        with tracer_scope(tracer):
            for job in ("job-a", "job-b"):
                with correlation_scope(job):
                    with tracer.span("job", job=job):
                        with tracer.span("eval", candidate=f"cand-{job}"):
                            pass
        tracer.close()
        assert cli_main(["trace", "report", str(path), "--job", "job-a"]) == 0
        out = capsys.readouterr().out
        assert "for job job-a" in out
        assert "cand-job-a" in out and "cand-job-b" not in out

    def test_report_renders_crashed_then_retried_pool_run(
        self, fault_env, tmp_path, capsys
    ):  # noqa: F811
        # The rendering path (not just span round-trip): a pool run where a
        # worker crashed mid-evaluation and the job was retried must render
        # a readable report with the retry flagged on the candidate line.
        from .test_faults import flaky_eval

        path = tmp_path / "crashed-retried.jsonl"
        fault_env.setenv(FAULT_BUDGET_ENV, "1")
        _traced_run(
            path,
            workers=2,
            eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
            count=3,
        )
        assert cli_main(["trace", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== per-stage rollup ==" in out
        assert "== candidate timeline ==" in out
        # Exactly one evaluation needed a second attempt, and the timeline
        # says so in plain text.
        assert out.count("attempt 2") == 1
        timeline = out.split("== candidate timeline ==")[1]
        assert len([line for line in timeline.splitlines() if line.strip()]) >= 3

    def test_report_renders_killed_worker_pool_run(
        self, fault_env, tmp_path, capsys
    ):  # noqa: F811
        # A hard worker death degrades the pool to the serial backend; the
        # resulting trace must still render, with every candidate present
        # exactly once in the timeline.
        path = tmp_path / "killed-worker.jsonl"
        fault_env.setenv(FAULT_BUDGET_ENV, "1")
        _, trace = _traced_run(
            path,
            workers=2,
            eval_fn=crashing_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
            count=3,
        )
        assert cli_main(["trace", "report", str(path)]) == 0
        out = capsys.readouterr().out
        timeline = out.split("== candidate timeline ==")[1]
        candidates = {
            s["attrs"]["candidate"] for s in trace.spans if s["name"] == "eval"
        }
        for candidate in candidates:
            assert timeline.count(candidate[:12]) >= 1
