"""Tests for the supernet-based search (the predecessor framework)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data import CTSData
from repro.operators import OperatorContext
from repro.supernet import (
    MixedOperation,
    SuperNet,
    SuperNetForecaster,
    SupernetConfig,
    supernet_search,
)
from repro.tasks import Task

OPS = ("gdcc", "dgcn", "skip")


def _context(n=4, h=8):
    return OperatorContext(hidden_dim=h, n_nodes=n, rng=np.random.default_rng(0))


def _task(t=180, n=4, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    values = np.stack(
        [np.sin(2 * np.pi * steps / 12 + k) + 0.1 * rng.standard_normal(t) for k in range(n)]
    )
    return Task(
        CTSData("toy", values[..., None].astype(np.float32), np.ones((n, n), np.float32), "test"),
        p=6, q=3, max_train_windows=96,
    )


class TestMixedOperation:
    def test_weighted_sum_shape(self):
        mixed = MixedOperation(_context(), OPS, np.random.default_rng(0))
        out = mixed(Tensor(np.random.default_rng(1).standard_normal((2, 8, 4, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 6)

    def test_weights_sum_to_one(self):
        mixed = MixedOperation(_context(), OPS, np.random.default_rng(0))
        np.testing.assert_allclose(mixed.weights().numpy().sum(), 1.0, rtol=1e-5)

    def test_strongest_reports_argmax(self):
        mixed = MixedOperation(_context(), OPS, np.random.default_rng(0))
        mixed.alpha.data = np.array([0.0, 5.0, 0.0], dtype=np.float32)
        name, weight = mixed.strongest()
        assert name == "dgcn"
        assert weight > 0.8

    def test_alpha_receives_gradient(self):
        mixed = MixedOperation(_context(), OPS, np.random.default_rng(0))
        out = mixed(Tensor(np.random.default_rng(1).standard_normal((1, 8, 4, 6)).astype(np.float32)))
        out.sum().backward()
        assert mixed.alpha.grad is not None

    def test_rejects_single_candidate(self):
        with pytest.raises(ValueError):
            MixedOperation(_context(), ("skip",), np.random.default_rng(0))


class TestSuperNet:
    def test_forward_shape(self):
        net = SuperNet(3, _context(), OPS)
        out = net(Tensor(np.random.default_rng(0).standard_normal((2, 8, 4, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 6)

    def test_edge_count_is_full_dag(self):
        net = SuperNet(4, _context(), OPS)
        assert len(net.pairs) == 6  # C(4,2)

    def test_parameter_partition(self):
        net = SuperNet(3, _context(), OPS)
        alphas = net.architecture_parameters()
        others = net.operator_parameters()
        assert len(alphas) == 3
        assert not ({id(a) for a in alphas} & {id(p) for p in others})
        assert len(alphas) + len(others) == len(list(net.parameters()))

    def test_derived_architecture_valid(self):
        net = SuperNet(4, _context(), OPS)
        arch = net.derive_architecture()
        arch.validate()
        assert arch.num_nodes == 4

    def test_derivation_respects_alpha(self):
        net = SuperNet(3, _context(), OPS)
        for mixed in net.mixed:
            mixed.alpha.data = np.array([10.0, 0.0, 0.0], dtype=np.float32)
        arch = net.derive_architecture()
        assert all(edge.op == "gdcc" for edge in arch.edges)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            SuperNet(1, _context(), OPS)


class TestSupernetSearch:
    def test_search_returns_valid_architecture(self):
        result = supernet_search(
            _task(),
            SupernetConfig(num_nodes=3, hidden_dim=8, epochs=2, batch_size=32),
            operators=OPS,
        )
        result.architecture.validate()
        assert len(result.train_losses) == 2

    def test_training_reduces_loss(self):
        result = supernet_search(
            _task(),
            SupernetConfig(num_nodes=3, hidden_dim=8, epochs=3, batch_size=32),
            operators=OPS,
        )
        assert result.train_losses[-1] < result.train_losses[0]

    def test_forecaster_shape(self):
        model = SuperNetForecaster(
            num_nodes=3, n_series=4, n_features=1, horizon=3, hidden_dim=8,
            operators=OPS,
        )
        out = model(np.zeros((2, 6, 4, 1), dtype=np.float32))
        assert out.shape == (2, 3, 4, 1)
