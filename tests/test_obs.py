"""Unit suite for the telemetry layer: tracing, metrics, heartbeat, profiling.

The contract under test throughout: telemetry observes, it never feeds
computation — disabled hooks are inert, enabled hooks only accumulate
counts/timings and span records.
"""

import json

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.module import Module, Parameter
from repro.obs import (
    Heartbeat,
    MetricsRegistry,
    Tracer,
    build_tree,
    configure_heartbeat,
    configure_tracing,
    file_tracer,
    get_registry,
    global_registry,
    heartbeat,
    load_trace,
    metrics_scope,
    profile,
    profiling_enabled,
    render_report,
    span,
    stage_rollup,
    tracer_scope,
    tracing_enabled,
)
from repro.obs.trace import TRACE_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def _clean_obs():
    """Keep the process-wide tracer/heartbeat state out of other tests."""
    configure_tracing(None)
    configure_heartbeat(False)
    yield
    configure_tracing(None)
    configure_heartbeat(False)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_link_parents(self):
        records = []
        tracer = Tracer(records.append)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.id != outer.id
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner_rec, outer_rec = records
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None

    def test_span_attrs_and_set(self):
        records = []
        tracer = Tracer(records.append)
        with tracer.span("work", fixed=1) as handle:
            handle.set(late=2)
        assert records[0]["attrs"] == {"fixed": 1, "late": 2}

    def test_exception_sets_error_attr_and_reraises(self):
        records = []
        tracer = Tracer(records.append)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert records[0]["attrs"]["error"] == "ValueError"

    def test_durations_are_nonnegative_and_versioned(self):
        records = []
        tracer = Tracer(records.append)
        with tracer.span("t"):
            pass
        assert records[0]["dur"] >= 0.0
        assert records[0]["v"] == TRACE_SCHEMA_VERSION

    def test_relay_grafts_roots_and_keeps_subtree(self):
        worker_records = []
        worker = Tracer(worker_records.append)
        with worker.span("eval"):
            with worker.span("train-forecaster"):
                pass
        parent_records = []
        parent = Tracer(parent_records.append)
        parent.relay(worker_records, parent_id="p.0.0", root_attrs={"attempt": 2})
        by_name = {r["name"]: r for r in parent_records}
        assert by_name["eval"]["parent"] == "p.0.0"
        assert by_name["eval"]["attrs"]["attempt"] == 2
        # The child keeps its worker-local parent link (the relayed eval id).
        assert by_name["train-forecaster"]["parent"] == by_name["eval"]["id"]

    def test_ambient_span_is_noop_when_disabled(self):
        assert not tracing_enabled()
        with span("anything", attr=1) as handle:
            handle.set(more=2)  # goes nowhere, must not raise
        assert handle.id is None

    def test_tracer_scope_overrides_and_restores(self):
        records = []
        with tracer_scope(Tracer(records.append)):
            assert tracing_enabled()
            with span("scoped"):
                pass
        assert not tracing_enabled()
        assert records[0]["name"] == "scoped"

    def test_tracer_scope_none_forces_off(self):
        records = []
        with tracer_scope(Tracer(records.append)):
            with tracer_scope(None):
                assert not tracing_enabled()
                with span("invisible"):
                    pass
        assert records == []


class TestTraceFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = file_tracer(path)
        with tracer_scope(tracer):
            with span("a", x=1):
                with span("b"):
                    pass
        tracer.close()
        trace = load_trace(path)
        assert trace.schema == TRACE_SCHEMA_VERSION
        assert [s["name"] for s in trace.spans] == ["b", "a"]
        assert trace.skipped_lines == 0

    def test_unparseable_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        tracer = file_tracer(path)
        with tracer.span("ok"):
            pass
        tracer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "kind": "span", "id": "x", truncated\n')
        trace = load_trace(path)
        assert len(trace.spans) == 1
        assert trace.skipped_lines == 1

    def test_future_schema_rejected_loudly(self, tmp_path):
        path = tmp_path / "future.jsonl"
        record = {"v": TRACE_SCHEMA_VERSION + 1, "kind": "span", "id": "x"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="newer than supported"):
            load_trace(path)

    def test_configure_tracing_installs_and_removes(self, tmp_path):
        path = tmp_path / "ambient.jsonl"
        configure_tracing(path)
        assert tracing_enabled()
        with span("ambient"):
            pass
        configure_tracing(None)
        assert not tracing_enabled()
        trace = load_trace(path)
        assert [s["name"] for s in trace.spans] == ["ambient"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["c"]["value"] == 3.5
        assert snap["g"]["value"] == 7.0
        assert snap["h"] == {
            "kind": "histogram", "count": 2, "total": 4.0,
            "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_parent_propagation(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("n").inc(3)
        child.histogram("h").observe(2.0)
        assert parent.counter("n").value == 3.0
        assert parent.histogram("h").count == 1
        # Parent-side updates do NOT flow down.
        parent.counter("n").inc()
        assert child.counter("n").value == 3.0

    def test_merge_snapshot(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        source.gauge("g").set(5)
        source.histogram("h").observe(1.0)
        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.histogram("h").observe(4.0)
        target.merge(source.snapshot())
        snap = target.snapshot()
        assert snap["c"]["value"] == 3.0
        assert snap["g"]["value"] == 5.0
        assert snap["h"]["count"] == 2
        assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 4.0

    def test_metrics_scope_isolates_and_restores(self):
        assert get_registry() is global_registry()
        with metrics_scope() as inner:
            assert get_registry() is inner
            inner.counter("only.here").inc()
        assert get_registry() is global_registry()
        assert "only.here" not in global_registry().snapshot()

    def test_render_formats_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("a.level").set(0.5)
        registry.histogram("a.lat").observe(0.25)
        text = registry.render()
        assert "a.count: 2" in text
        assert "a.level: 0.5" in text
        assert "a.lat: n=1" in text
        assert registry.render(prefix="b.") == ""


class TestStatsMigration:
    def test_eval_stats_attributes_and_report(self):
        from repro.runtime.evaluator import EvalStats

        with metrics_scope() as ambient:
            stats = EvalStats()
            stats.hits += 2
            stats.misses += 1
            stats.record_eval(0.5, queue_wait=0.1)
            stats.batch_seconds += 0.75
            stats.batches += 1
            assert stats.hits == 2 and stats.misses == 1
            assert stats.evaluations == 1
            assert stats.hit_rate == pytest.approx(2 / 3)
            report = stats.report()
            assert "1 fresh, 2 cache hits" in report
            assert "compute 0.50s, queue wait 0.10s" in report
            # Local counts tee into the ambient registry.
            snap = ambient.snapshot()
            assert snap["eval.hits"]["value"] == 2.0
            assert snap["eval.queue_wait_seconds"]["value"] == pytest.approx(0.1)

    def test_eval_stats_instances_are_isolated(self):
        from repro.runtime.evaluator import EvalStats

        with metrics_scope():
            one, two = EvalStats(), EvalStats()
            one.misses += 5
            assert two.misses == 0

    def test_ranking_stats_attributes_and_report(self):
        from repro.comparator.scoring import RankingStats

        with metrics_scope() as ambient:
            stats = RankingStats()
            stats.embed_hits += 3
            stats.embed_misses += 1
            stats.pair_scores += 12
            stats.win_matrices += 1
            assert "1 win matrices" in stats.report()
            assert "75% hit rate" in stats.report()
            assert ambient.snapshot()["rank.pair_scores"]["value"] == 12.0


# ---------------------------------------------------------------------------
# Heartbeat
# ---------------------------------------------------------------------------


class TestHeartbeat:
    def test_first_beat_only_arms(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        assert not beat.beat("k", lambda: "one")
        assert lines == []

    def test_rate_limited_then_emits(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        beat.beat("k", lambda: "armed")
        now[0] = 5.0
        assert not beat.beat("k", lambda: "too soon")
        now[0] = 11.0
        assert beat.beat("k", lambda: "due")
        assert lines == ["[heartbeat] due"]
        now[0] = 12.0
        assert not beat.beat("k", lambda: "again too soon")

    def test_force_bypasses_interval(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        beat.beat("k", lambda: "armed")
        assert beat.beat("k", lambda: "forced", force=True)
        assert lines == ["[heartbeat] forced"]

    def test_keys_are_independent(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        beat.beat("a", lambda: "")
        now[0] = 11.0
        assert not beat.beat("b", lambda: "b arms separately")

    def test_disabled_module_heartbeat_never_renders(self):
        calls = []

        def render():
            calls.append(1)
            return "never"

        assert not heartbeat("k", render)
        assert calls == []

    def test_configured_heartbeat_emits_through_sink(self):
        lines = []
        configure_heartbeat(enabled=True, min_interval=0.0, sink=lines.append)
        heartbeat("k", lambda: "armed")
        assert heartbeat("k", lambda: "emitted")
        assert lines == ["[heartbeat] emitted"]


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------


class _TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((3, 3), dtype=np.float64))

    def forward(self, x):
        return x @ self.weight


class TestProfiling:
    def test_disabled_by_default(self):
        assert not profiling_enabled()
        with metrics_scope() as registry:
            _TinyNet()(Tensor(np.ones((2, 3))))
        assert registry.snapshot() == {}

    def test_forward_timing_attributed_to_module_path(self):
        with metrics_scope() as registry, profile():
            _TinyNet()(Tensor(np.ones((2, 3))))
        snap = registry.snapshot()
        assert snap["profile.forward._TinyNet.calls"]["value"] == 1.0
        assert snap["profile.forward._TinyNet.seconds"]["value"] >= 0.0

    def test_op_counts_forward_and_backward(self):
        with metrics_scope() as registry, profile():
            net = _TinyNet()
            loss = (net(Tensor(np.ones((2, 3)))) * 2.0).sum()
            loss.backward()
        snap = registry.snapshot()
        matmul_fwd = snap["profile.ops.matmul.forward"]["value"]
        matmul_bwd = snap["profile.ops.matmul.backward"]["value"]
        assert matmul_fwd == 1.0 and matmul_bwd == 1.0

    def test_profiling_never_changes_outputs(self):
        x = np.random.default_rng(0).normal(size=(4, 3))
        net = _TinyNet()
        plain = net(Tensor(x)).numpy()
        with metrics_scope(), profile():
            profiled = net(Tensor(x)).numpy()
        np.testing.assert_array_equal(plain, profiled)

    def test_profile_context_restores_state(self):
        with profile():
            assert profiling_enabled()
            with profile(enabled=False):
                assert not profiling_enabled()
            assert profiling_enabled()
        assert not profiling_enabled()


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def _span_record(span_id, name, parent=None, dur=1.0, wall0=0.0, attrs=None):
    return {
        "v": 1, "kind": "span", "id": span_id, "parent": parent,
        "name": name, "wall0": wall0, "dur": dur, "pid": 1,
        "attrs": attrs or {},
    }


class TestReport:
    def test_stage_rollup_aggregates_by_name(self):
        spans = [
            _span_record("1", "eval", dur=1.0),
            _span_record("2", "eval", dur=3.0, attrs={"error": "X"}),
            _span_record("3", "rank", dur=0.5),
        ]
        rollup = stage_rollup(spans)
        assert rollup["eval"].count == 2
        assert rollup["eval"].total == 4.0
        assert rollup["eval"].max == 3.0
        assert rollup["eval"].mean == 2.0
        assert rollup["eval"].errors == 1
        assert rollup["rank"].count == 1

    def test_build_tree_promotes_orphans(self):
        spans = [
            _span_record("root", "search", wall0=1.0),
            _span_record("kid", "eval", parent="root", wall0=2.0),
            _span_record("lost", "eval", parent="never-closed", wall0=3.0),
        ]
        roots, children = build_tree(spans)
        assert [r["id"] for r in roots] == ["root", "lost"]
        assert [c["id"] for c in children["root"]] == ["kid"]

    def test_render_report_end_to_end(self, tmp_path):
        path = tmp_path / "report.jsonl"
        tracer = file_tracer(path)
        with tracer_scope(tracer):
            with span("search", task="toy"):
                with span("eval", candidate="cand-a", task="toy") as handle:
                    handle.set(attempt=2, diverged=True)
        tracer.close()
        text = render_report(path)
        assert "== per-stage rollup ==" in text
        assert "== span tree ==" in text
        assert "== candidate timeline ==" in text
        assert "attempt 2" in text and "diverged" in text
