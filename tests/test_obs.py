"""Unit suite for the telemetry layer: tracing, metrics, heartbeat, profiling.

The contract under test throughout: telemetry observes, it never feeds
computation — disabled hooks are inert, enabled hooks only accumulate
counts/timings and span records.
"""

import json

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.module import Module, Parameter
from repro.obs import (
    Heartbeat,
    MetricsRegistry,
    Tracer,
    build_tree,
    configure_heartbeat,
    configure_tracing,
    file_tracer,
    get_registry,
    global_registry,
    heartbeat,
    load_trace,
    metrics_scope,
    profile,
    profiling_enabled,
    render_report,
    span,
    stage_rollup,
    tracer_scope,
    tracing_enabled,
)
from repro.obs.trace import TRACE_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def _clean_obs():
    """Keep the process-wide tracer/heartbeat state out of other tests."""
    configure_tracing(None)
    configure_heartbeat(False)
    yield
    configure_tracing(None)
    configure_heartbeat(False)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_link_parents(self):
        records = []
        tracer = Tracer(records.append)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.id != outer.id
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner_rec, outer_rec = records
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None

    def test_span_attrs_and_set(self):
        records = []
        tracer = Tracer(records.append)
        with tracer.span("work", fixed=1) as handle:
            handle.set(late=2)
        assert records[0]["attrs"] == {"fixed": 1, "late": 2}

    def test_exception_sets_error_attr_and_reraises(self):
        records = []
        tracer = Tracer(records.append)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert records[0]["attrs"]["error"] == "ValueError"

    def test_durations_are_nonnegative_and_versioned(self):
        records = []
        tracer = Tracer(records.append)
        with tracer.span("t"):
            pass
        assert records[0]["dur"] >= 0.0
        assert records[0]["v"] == TRACE_SCHEMA_VERSION

    def test_relay_grafts_roots_and_keeps_subtree(self):
        worker_records = []
        worker = Tracer(worker_records.append)
        with worker.span("eval"):
            with worker.span("train-forecaster"):
                pass
        parent_records = []
        parent = Tracer(parent_records.append)
        parent.relay(worker_records, parent_id="p.0.0", root_attrs={"attempt": 2})
        by_name = {r["name"]: r for r in parent_records}
        assert by_name["eval"]["parent"] == "p.0.0"
        assert by_name["eval"]["attrs"]["attempt"] == 2
        # The child keeps its worker-local parent link (the relayed eval id).
        assert by_name["train-forecaster"]["parent"] == by_name["eval"]["id"]

    def test_ambient_span_is_noop_when_disabled(self):
        assert not tracing_enabled()
        with span("anything", attr=1) as handle:
            handle.set(more=2)  # goes nowhere, must not raise
        assert handle.id is None

    def test_tracer_scope_overrides_and_restores(self):
        records = []
        with tracer_scope(Tracer(records.append)):
            assert tracing_enabled()
            with span("scoped"):
                pass
        assert not tracing_enabled()
        assert records[0]["name"] == "scoped"

    def test_tracer_scope_none_forces_off(self):
        records = []
        with tracer_scope(Tracer(records.append)):
            with tracer_scope(None):
                assert not tracing_enabled()
                with span("invisible"):
                    pass
        assert records == []


class TestTraceFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = file_tracer(path)
        with tracer_scope(tracer):
            with span("a", x=1):
                with span("b"):
                    pass
        tracer.close()
        trace = load_trace(path)
        assert trace.schema == TRACE_SCHEMA_VERSION
        assert [s["name"] for s in trace.spans] == ["b", "a"]
        assert trace.skipped_lines == 0

    def test_unparseable_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        tracer = file_tracer(path)
        with tracer.span("ok"):
            pass
        tracer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "kind": "span", "id": "x", truncated\n')
        trace = load_trace(path)
        assert len(trace.spans) == 1
        assert trace.skipped_lines == 1

    def test_future_schema_rejected_loudly(self, tmp_path):
        path = tmp_path / "future.jsonl"
        record = {"v": TRACE_SCHEMA_VERSION + 1, "kind": "span", "id": "x"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="newer than supported"):
            load_trace(path)

    def test_configure_tracing_installs_and_removes(self, tmp_path):
        path = tmp_path / "ambient.jsonl"
        configure_tracing(path)
        assert tracing_enabled()
        with span("ambient"):
            pass
        configure_tracing(None)
        assert not tracing_enabled()
        trace = load_trace(path)
        assert [s["name"] for s in trace.spans] == ["ambient"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["c"]["value"] == 3.5
        assert snap["g"]["value"] == 7.0
        h = snap["h"]
        assert h["kind"] == "histogram"
        assert h["count"] == 2 and h["total"] == 4.0
        assert h["min"] == 1.0 and h["max"] == 3.0 and h["mean"] == 2.0
        # The bucketed summary: one bucket per observation here, plus
        # quantiles (bucket upper bounds clamped to the observed extremes).
        assert sum(h["buckets"].values()) == 2
        assert h["p50"] == 1.0
        assert h["p90"] == 3.0 and h["p99"] == 3.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_parent_propagation(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("n").inc(3)
        child.histogram("h").observe(2.0)
        assert parent.counter("n").value == 3.0
        assert parent.histogram("h").count == 1
        # Parent-side updates do NOT flow down.
        parent.counter("n").inc()
        assert child.counter("n").value == 3.0

    def test_merge_snapshot(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        source.gauge("g").set(5)
        source.histogram("h").observe(1.0)
        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.histogram("h").observe(4.0)
        target.merge(source.snapshot())
        snap = target.snapshot()
        assert snap["c"]["value"] == 3.0
        assert snap["g"]["value"] == 5.0
        assert snap["h"]["count"] == 2
        assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 4.0

    def test_metrics_scope_isolates_and_restores(self):
        assert get_registry() is global_registry()
        with metrics_scope() as inner:
            assert get_registry() is inner
            inner.counter("only.here").inc()
        assert get_registry() is global_registry()
        assert "only.here" not in global_registry().snapshot()

    def test_render_formats_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("a.level").set(0.5)
        registry.histogram("a.lat").observe(0.25)
        text = registry.render()
        assert "a.count: 2" in text
        assert "a.level: 0.5" in text
        assert "a.lat: n=1" in text
        assert registry.render(prefix="b.") == ""


class TestStatsMigration:
    def test_eval_stats_attributes_and_report(self):
        from repro.runtime.evaluator import EvalStats

        with metrics_scope() as ambient:
            stats = EvalStats()
            stats.hits += 2
            stats.misses += 1
            stats.record_eval(0.5, queue_wait=0.1)
            stats.batch_seconds += 0.75
            stats.batches += 1
            assert stats.hits == 2 and stats.misses == 1
            assert stats.evaluations == 1
            assert stats.hit_rate == pytest.approx(2 / 3)
            report = stats.report()
            assert "1 fresh, 2 cache hits" in report
            assert "compute 0.50s, queue wait 0.10s" in report
            # Local counts tee into the ambient registry.
            snap = ambient.snapshot()
            assert snap["eval.hits"]["value"] == 2.0
            assert snap["eval.queue_wait_seconds"]["value"] == pytest.approx(0.1)

    def test_eval_stats_instances_are_isolated(self):
        from repro.runtime.evaluator import EvalStats

        with metrics_scope():
            one, two = EvalStats(), EvalStats()
            one.misses += 5
            assert two.misses == 0

    def test_ranking_stats_attributes_and_report(self):
        from repro.comparator.scoring import RankingStats

        with metrics_scope() as ambient:
            stats = RankingStats()
            stats.embed_hits += 3
            stats.embed_misses += 1
            stats.pair_scores += 12
            stats.win_matrices += 1
            assert "1 win matrices" in stats.report()
            assert "75% hit rate" in stats.report()
            assert ambient.snapshot()["rank.pair_scores"]["value"] == 12.0


# ---------------------------------------------------------------------------
# Heartbeat
# ---------------------------------------------------------------------------


class TestHeartbeat:
    def test_first_beat_only_arms(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        assert not beat.beat("k", lambda: "one")
        assert lines == []

    def test_rate_limited_then_emits(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        beat.beat("k", lambda: "armed")
        now[0] = 5.0
        assert not beat.beat("k", lambda: "too soon")
        now[0] = 11.0
        assert beat.beat("k", lambda: "due")
        assert lines == ["[heartbeat] due"]
        now[0] = 12.0
        assert not beat.beat("k", lambda: "again too soon")

    def test_force_bypasses_interval(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        beat.beat("k", lambda: "armed")
        assert beat.beat("k", lambda: "forced", force=True)
        assert lines == ["[heartbeat] forced"]

    def test_keys_are_independent(self):
        lines, now = [], [0.0]
        beat = Heartbeat(min_interval=10.0, sink=lines.append, clock=lambda: now[0])
        beat.beat("a", lambda: "")
        now[0] = 11.0
        assert not beat.beat("b", lambda: "b arms separately")

    def test_disabled_module_heartbeat_never_renders(self):
        calls = []

        def render():
            calls.append(1)
            return "never"

        assert not heartbeat("k", render)
        assert calls == []

    def test_configured_heartbeat_emits_through_sink(self):
        lines = []
        configure_heartbeat(enabled=True, min_interval=0.0, sink=lines.append)
        heartbeat("k", lambda: "armed")
        assert heartbeat("k", lambda: "emitted")
        assert lines == ["[heartbeat] emitted"]


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------


class _TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((3, 3), dtype=np.float64))

    def forward(self, x):
        return x @ self.weight


class TestProfiling:
    def test_disabled_by_default(self):
        assert not profiling_enabled()
        with metrics_scope() as registry:
            _TinyNet()(Tensor(np.ones((2, 3))))
        assert registry.snapshot() == {}

    def test_forward_timing_attributed_to_module_path(self):
        with metrics_scope() as registry, profile():
            _TinyNet()(Tensor(np.ones((2, 3))))
        snap = registry.snapshot()
        assert snap["profile.forward._TinyNet.calls"]["value"] == 1.0
        assert snap["profile.forward._TinyNet.seconds"]["value"] >= 0.0

    def test_op_counts_forward_and_backward(self):
        with metrics_scope() as registry, profile():
            net = _TinyNet()
            loss = (net(Tensor(np.ones((2, 3)))) * 2.0).sum()
            loss.backward()
        snap = registry.snapshot()
        matmul_fwd = snap["profile.ops.matmul.forward"]["value"]
        matmul_bwd = snap["profile.ops.matmul.backward"]["value"]
        assert matmul_fwd == 1.0 and matmul_bwd == 1.0

    def test_profiling_never_changes_outputs(self):
        x = np.random.default_rng(0).normal(size=(4, 3))
        net = _TinyNet()
        plain = net(Tensor(x)).numpy()
        with metrics_scope(), profile():
            profiled = net(Tensor(x)).numpy()
        np.testing.assert_array_equal(plain, profiled)

    def test_profile_context_restores_state(self):
        with profile():
            assert profiling_enabled()
            with profile(enabled=False):
                assert not profiling_enabled()
            assert profiling_enabled()
        assert not profiling_enabled()


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def _span_record(span_id, name, parent=None, dur=1.0, wall0=0.0, attrs=None):
    return {
        "v": 1, "kind": "span", "id": span_id, "parent": parent,
        "name": name, "wall0": wall0, "dur": dur, "pid": 1,
        "attrs": attrs or {},
    }


class TestReport:
    def test_stage_rollup_aggregates_by_name(self):
        spans = [
            _span_record("1", "eval", dur=1.0),
            _span_record("2", "eval", dur=3.0, attrs={"error": "X"}),
            _span_record("3", "rank", dur=0.5),
        ]
        rollup = stage_rollup(spans)
        assert rollup["eval"].count == 2
        assert rollup["eval"].total == 4.0
        assert rollup["eval"].max == 3.0
        assert rollup["eval"].mean == 2.0
        assert rollup["eval"].errors == 1
        assert rollup["rank"].count == 1

    def test_build_tree_promotes_orphans(self):
        spans = [
            _span_record("root", "search", wall0=1.0),
            _span_record("kid", "eval", parent="root", wall0=2.0),
            _span_record("lost", "eval", parent="never-closed", wall0=3.0),
        ]
        roots, children = build_tree(spans)
        assert [r["id"] for r in roots] == ["root", "lost"]
        assert [c["id"] for c in children["root"]] == ["kid"]

    def test_render_report_end_to_end(self, tmp_path):
        path = tmp_path / "report.jsonl"
        tracer = file_tracer(path)
        with tracer_scope(tracer):
            with span("search", task="toy"):
                with span("eval", candidate="cand-a", task="toy") as handle:
                    handle.set(attempt=2, diverged=True)
        tracer.close()
        text = render_report(path)
        assert "== per-stage rollup ==" in text
        assert "== span tree ==" in text
        assert "== candidate timeline ==" in text
        assert "attempt 2" in text and "diverged" in text


# ---------------------------------------------------------------------------
# Quantile histograms (bucketed summary, merge exactness)
# ---------------------------------------------------------------------------


class TestQuantileHistogram:
    def test_bucket_index_is_pure_and_monotonic(self):
        from repro.obs import bucket_index, bucket_upper_bound

        values = [1e-9, 0.003, 0.1, 0.99, 1.0, 1.0000001, 7.5, 4096.0]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)
        for v in values:
            # Every value lies at or below its bucket's upper bound...
            assert v <= bucket_upper_bound(bucket_index(v)) * (1 + 1e-12)
            # ...and bucketing is deterministic.
            assert bucket_index(v) == bucket_index(v)
        assert bucket_upper_bound(bucket_index(0.0)) == 0.0
        assert bucket_upper_bound(bucket_index(-3.0)) == 0.0

    def test_quantiles_clamped_to_observed_extremes(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for v in (0.5, 0.5, 0.5):
            h.observe(v)
        # A single-bucket distribution: every quantile is the (clamped)
        # observed value, not the bucket's (larger) upper bound.
        assert h.quantile(0.5) == 0.5
        assert h.quantile(0.99) == 0.5
        assert h.quantile(0.5) >= h.min and h.quantile(0.99) <= h.max

    def test_empty_histogram_quantile_is_none(self):
        h = MetricsRegistry().histogram("empty")
        assert h.quantile(0.5) is None
        snap = h.snapshot()
        assert snap["p50"] is None and snap["p99"] is None

    def test_merge_tolerates_pre_bucket_snapshots(self):
        target = MetricsRegistry()
        target.histogram("h").observe(1.0)
        # A snapshot from an old build: summary only, no bucket map.
        target.merge({"h": {
            "kind": "histogram", "count": 2, "total": 6.0,
            "min": 2.0, "max": 4.0, "mean": 3.0,
        }})
        h = target.histogram("h")
        assert h.count == 3 and h.min == 1.0 and h.max == 4.0
        assert h.quantile(0.99) == 4.0  # degrades to the extremes

    def test_render_is_sorted_by_name_across_kinds(self):
        registry = MetricsRegistry()
        # Deliberately interleave creation order and kinds.
        registry.histogram("z.lat").observe(1.0)
        registry.counter("a.count").inc()
        registry.gauge("m.level").set(2.0)
        registry.counter("b.count").inc()
        names = [line.split(":")[0] for line in registry.render().splitlines()]
        assert names == sorted(names)
        snap_names = list(registry.snapshot())
        assert snap_names == sorted(snap_names)

    def test_render_includes_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("a.lat").observe(0.25)
        line = registry.render()
        assert "p50=" in line and "p90=" in line and "p99=" in line


class TestQuantileMergeExactness:
    """Acceptance criterion: merged quantiles == single-registry quantiles."""

    def _property(self, values, split_mask):
        whole = MetricsRegistry()
        parts = [MetricsRegistry(), MetricsRegistry()]
        for value, which in zip(values, split_mask):
            whole.histogram("h").observe(value)
            parts[which].histogram("h").observe(value)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge(part.snapshot())
        left, right = merged.snapshot()["h"], whole.snapshot()["h"]
        for key in ("count", "min", "max", "buckets", "p50", "p90", "p99"):
            assert left[key] == right[key], key

    def test_hypothesis_any_split_merges_exactly(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=200, deadline=None)
        @given(
            st.lists(
                st.floats(
                    min_value=-1e6, max_value=1e9,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=1, max_size=40,
            ),
            st.randoms(use_true_random=False),
        )
        def run(values, rng):
            mask = [rng.randint(0, 1) for _ in values]
            self._property(values, mask)

        run()

    def test_three_way_worker_split(self):
        values = [0.01 * (i + 1) for i in range(30)]
        whole = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(3)]
        for i, v in enumerate(values):
            whole.histogram("eval.seconds").observe(v)
            workers[i % 3].histogram("eval.seconds").observe(v)
        merged = MetricsRegistry()
        for worker in workers:
            merged.merge(worker.snapshot())
        for q in (0.5, 0.9, 0.99):
            assert (
                merged.histogram("eval.seconds").quantile(q)
                == whole.histogram("eval.seconds").quantile(q)
            )


# ---------------------------------------------------------------------------
# Correlation ids and the span buffer
# ---------------------------------------------------------------------------


class TestCorrelation:
    def test_correlation_scope_stamps_spans(self):
        from repro.obs import correlation_scope, current_correlation

        records = []
        tracer = Tracer(records.append)
        assert current_correlation() is None
        with correlation_scope("job-7"):
            assert current_correlation() == "job-7"
            with tracer.span("work"):
                pass
        with tracer.span("outside"):
            pass
        assert records[0]["corr"] == "job-7"
        assert "corr" not in records[1]
        assert current_correlation() is None

    def test_correlation_scopes_nest(self):
        from repro.obs import correlation_scope, current_correlation

        with correlation_scope("outer"):
            with correlation_scope("inner"):
                assert current_correlation() == "inner"
            assert current_correlation() == "outer"

    def test_relay_stamps_ambient_correlation(self):
        from repro.obs import correlation_scope

        records = []
        tracer = Tracer(records.append)
        worker = [
            {"kind": "span", "id": "w.0", "parent": None, "name": "eval",
             "dur": 0.1, "attrs": {}},
            {"kind": "span", "id": "w.1", "parent": "w.0", "name": "train",
             "dur": 0.05, "attrs": {}},
        ]
        with correlation_scope("job-3"):
            tracer.relay(worker, parent_id="batch", root_attrs={"attempt": 2})
        assert all(r["corr"] == "job-3" for r in records)
        assert records[0]["parent"] == "batch"
        assert records[0]["attrs"]["attempt"] == 2
        assert records[1]["parent"] == "w.0"  # child link intact
        # Relay never mutates the caller's originals.
        assert "corr" not in worker[0]

    def test_relay_preserves_existing_correlation(self):
        from repro.obs import correlation_scope

        records = []
        tracer = Tracer(records.append)
        with correlation_scope("new"):
            tracer.relay([{"kind": "span", "id": "a", "parent": None,
                           "name": "x", "dur": 0.0, "attrs": {}, "corr": "old"}])
        assert records[0]["corr"] == "old"


class TestSpanBuffer:
    def test_buffer_filters_by_correlation(self):
        from repro.obs import SpanBuffer, buffered_tracer, correlation_scope

        buffer = SpanBuffer()
        tracer = buffered_tracer(buffer)
        with correlation_scope("a"):
            with tracer.span("one"):
                pass
        with correlation_scope("b"):
            with tracer.span("two"):
                pass
        assert len(buffer) == 2
        assert [r["name"] for r in buffer.records(correlation="a")] == ["one"]
        assert [r["name"] for r in buffer.records(correlation="b")] == ["two"]
        buffer.clear()
        assert buffer.records() == []

    def test_buffer_is_bounded(self):
        from repro.obs import SpanBuffer

        buffer = SpanBuffer(maxlen=3)
        for i in range(10):
            buffer({"kind": "span", "id": str(i), "name": "s"})
        records = buffer.records()
        assert len(records) == 3
        assert [r["id"] for r in records] == ["7", "8", "9"]

    def test_buffered_tracer_tees_into_base(self):
        from repro.obs import SpanBuffer, buffered_tracer

        base_records = []
        base = Tracer(base_records.append)
        buffer = SpanBuffer()
        tracer = buffered_tracer(buffer, base=base)
        with tracer.span("teed"):
            pass
        assert [r["name"] for r in buffer.records()] == ["teed"]
        assert [r["name"] for r in base_records] == ["teed"]


class TestReportJobFilter:
    def test_render_report_filters_by_job(self, tmp_path):
        from repro.obs import correlation_scope

        path = tmp_path / "jobs.jsonl"
        tracer = file_tracer(path)
        with tracer_scope(tracer):
            with correlation_scope("job-a"):
                with span("execute", kind="rank"):
                    pass
            with correlation_scope("job-b"):
                with span("execute", kind="train"):
                    pass
        tracer.close()
        text = render_report(path, job="job-a")
        assert "1 spans for job job-a" in text
        filtered = render_report(path, job="job-b")
        assert "1 spans for job job-b" in filtered
        everything = render_report(path)
        assert "2 spans" in everything

    def test_rollup_has_quantile_columns(self):
        from repro.obs import render_rollup

        spans_ = [_span_record(str(i), "eval", dur=0.1 * (i + 1)) for i in range(10)]
        rollup = stage_rollup(spans_)
        assert rollup["eval"].p50 == pytest.approx(0.5)
        assert rollup["eval"].p99 == pytest.approx(1.0)
        table = render_rollup(rollup)
        assert "p50 s" in table and "p99 s" in table


class TestLatencySummary:
    def test_formats_histogram_and_snapshot_and_empty(self):
        from repro.obs import latency_summary

        registry = MetricsRegistry()
        h = registry.histogram("h")
        assert latency_summary(h) == "p50=- p99=-"
        for v in (0.5, 0.5, 0.5):
            h.observe(v)
        live = latency_summary(h)
        assert live.startswith("p50=0.5s") and "p99=0.5s" in live
        assert latency_summary(h.snapshot()) == live
        assert latency_summary(None) == "p50=- p99=-"


# ---------------------------------------------------------------------------
# Export surfaces: Prometheus text + dashboard HTML
# ---------------------------------------------------------------------------


class TestPrometheusExport:
    def test_all_kinds_render_sorted_and_sanitized(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("m.lat.seconds").observe(0.2)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE a_level gauge" in text
        assert "# TYPE m_lat_seconds histogram" in text
        assert "# TYPE z_count counter" in text
        # Sorted by metric name.
        assert text.index("a_level") < text.index("m_lat_seconds") < text.index("z_count")
        assert 'm_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "m_lat_seconds_count 1" in text
        assert "m_lat_seconds_sum" in text

    def test_bucket_series_is_cumulative(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        lines = [l for l in render_prometheus(registry.snapshot()).splitlines()
                 if l.startswith("lat_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5  # +Inf bucket carries the total count

    def test_name_sanitization(self):
        from repro.obs import prometheus_name

        assert prometheus_name("eval.seconds") == "eval_seconds"
        assert prometheus_name("profile.forward.Conv2d.seconds") == (
            "profile_forward_Conv2d_seconds"
        )
        assert prometheus_name("9lives") == "_9lives"


class TestDashboard:
    def test_dashboard_renders_all_sections(self):
        from repro.obs import render_dashboard

        registry = MetricsRegistry()
        registry.histogram("service.rank.seconds").observe(0.05)
        html = render_dashboard({
            "title": "repro test",
            "jobs": {"pending": 3, "running": 1, "done": 9},
            "workers": [{"owner": "worker-ab", "job": "j1", "age": 0.4}],
            "metrics": registry.snapshot(),
            "cache": {"eval": "50% (1/2)"},
            "traces": [{"name": "job", "corr": "j1", "dur": 1.25,
                        "attrs": {"kind": "rank"}}],
        })
        assert html.startswith("<!doctype html>")
        assert "queue depth 4" in html
        assert "worker-ab" in html
        assert "service.rank.seconds" in html
        assert "50% (1/2)" in html
        assert "j1" in html and "1.250s" in html

    def test_dashboard_escapes_html(self):
        from repro.obs import render_dashboard

        html = render_dashboard({
            "title": "<script>alert(1)</script>",
            "traces": [{"name": "<b>x</b>", "dur": 0.0,
                        "attrs": {"evil": "<img src=x>"}}],
        })
        assert "<script>alert" not in html
        assert "<b>x</b>" not in html
        assert "<img" not in html

    def test_dashboard_empty_data_is_valid(self):
        from repro.obs import render_dashboard

        html = render_dashboard({})
        assert "(none)" in html and "queue depth 0" in html
