"""Tests for autodiff anomaly mode: NaN/Inf provenance (``detect_anomaly``)."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import NonFiniteError, Tensor, detect_anomaly, module_scope
from repro.autodiff.anomaly import (
    ANOMALY_ENV,
    anomaly_enabled,
    array_stats,
    op_name_of,
    set_anomaly_default,
)
from repro.nn.linear import Linear
from repro.nn.module import Module


class TestMode:
    def test_disabled_by_default(self):
        assert not anomaly_enabled()

    def test_context_manager_scopes_the_flag(self):
        with detect_anomaly():
            assert anomaly_enabled()
            with detect_anomaly(False):
                assert not anomaly_enabled()
            assert anomaly_enabled()
        assert not anomaly_enabled()

    def test_process_default_via_env(self, monkeypatch):
        monkeypatch.setenv(ANOMALY_ENV, "0")
        try:
            set_anomaly_default(True)
            assert anomaly_enabled()
            import os

            assert os.environ[ANOMALY_ENV] == "1"  # inherited by pool workers
        finally:
            set_anomaly_default(False)
        assert not anomaly_enabled()

    def test_disabled_mode_keeps_legacy_behavior(self):
        # Without anomaly mode, a non-finite value flows through silently
        # (the historical semantics every existing call site relies on).
        with np.errstate(over="ignore"):
            out = ad.exp(Tensor(np.array([1000.0], dtype=np.float32)))
        assert np.isinf(out.data).all()

    def test_disabled_mode_does_not_stamp_op_names(self):
        t = ad.exp(Tensor(1.0, requires_grad=True))
        assert t._op is None
        with detect_anomaly():
            t = ad.exp(Tensor(1.0, requires_grad=True))
        assert t._op == "exp"


class TestForwardProvenance:
    def test_overflow_names_the_op(self):
        with detect_anomaly(), np.errstate(over="ignore"):
            with pytest.raises(NonFiniteError) as info:
                ad.exp(Tensor(np.array([1000.0], dtype=np.float32)))
        err = info.value
        assert err.op == "exp"
        assert err.phase == "forward"
        assert "exp" in str(err)

    def test_nan_names_the_op(self):
        with detect_anomaly(), np.errstate(invalid="ignore"):
            with pytest.raises(NonFiniteError) as info:
                ad.log(Tensor(np.array([-1.0], dtype=np.float32)))
        assert info.value.op == "log"

    def test_first_bad_op_wins_in_a_composed_expression(self):
        a = Tensor(np.array([0.5], dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([500.0], dtype=np.float32), requires_grad=True)
        with detect_anomaly(), np.errstate(over="ignore"):
            with pytest.raises(NonFiniteError) as info:
                # tanh is healthy; the planted overflow lives in exp.
                ad.tanh(a) + ad.exp(b * 10.0)
        assert info.value.op == "exp"

    def test_input_stats_recorded(self):
        values = np.array([1.0, 2000.0], dtype=np.float32)
        with detect_anomaly(), np.errstate(over="ignore"):
            with pytest.raises(NonFiniteError) as info:
                ad.exp(Tensor(values))
        (stats,) = info.value.input_stats
        assert stats["shape"] == (2,)
        assert stats["min"] == 1.0
        assert stats["max"] == 2000.0
        assert stats["non_finite"] == 0

    def test_healthy_graph_unaffected(self):
        with detect_anomaly():
            t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            out = (ad.exp(t) * 2.0).sum()
            out.backward()
        assert np.isfinite(t.grad).all()


class TestBackwardProvenance:
    def test_infinite_gradient_names_the_op(self):
        # log(5e-324) is finite forward; its gradient 1/5e-324 overflows.
        with detect_anomaly(), np.errstate(over="ignore", divide="ignore"):
            t = Tensor(np.array([5e-324]), requires_grad=True)
            out = ad.log(t).sum()
            assert np.isfinite(out.data).all()
            with pytest.raises(NonFiniteError) as info:
                out.backward()
        err = info.value
        assert err.op == "log"
        assert err.phase == "backward"

    def test_backward_check_requires_anomaly_at_backward_time(self):
        with np.errstate(over="ignore", divide="ignore"):
            t = Tensor(np.array([5e-324]), requires_grad=True)
            out = ad.log(t).sum()
            out.backward()  # disabled: inf gradient flows silently
        assert np.isinf(t.grad).all()


class TestModulePath:
    def test_module_chain_in_error(self):
        class Exploder(Module):
            def forward(self, x):
                return ad.exp(x * 100.0)

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Exploder()

            def forward(self, x):
                return self.inner(x)

        with detect_anomaly(), np.errstate(over="ignore"):
            with pytest.raises(NonFiniteError) as info:
                Outer()(Tensor(np.array([50.0], dtype=np.float32)))
        assert info.value.module_path == "Outer/Exploder"
        assert "Outer/Exploder" in str(info.value)

    def test_module_scope_stack(self):
        from repro.autodiff.anomaly import current_module_path

        with module_scope("A"), module_scope("B"):
            assert current_module_path() == "A/B"
        assert current_module_path() == ""

    def test_linear_module_named(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.weight.data[...] = 1e30  # float32: the product overflows
        x = Tensor(np.full((1, 2), 1e30, dtype=np.float32))
        with detect_anomaly(), np.errstate(over="ignore"):
            with pytest.raises(NonFiniteError) as info:
                layer(x)
        assert "Linear" in info.value.module_path


class TestHelpers:
    def test_op_name_of_derives_from_qualname(self):
        # Op backwards are closures of module-level op functions, so their
        # qualname leads with the op name (e.g. "exp.<locals>.backward").
        def backward(grad):
            return (grad,)

        backward.__qualname__ = "exp.<locals>.backward"
        assert op_name_of(backward) == "exp"

    def test_op_name_of_handles_missing_qualname(self):
        class Opaque:
            pass

        assert op_name_of(Opaque()) == "<unknown>"

    def test_array_stats_mixed(self):
        stats = array_stats(np.array([1.0, np.nan, 3.0, np.inf]))
        assert stats["non_finite"] == 2
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_array_stats_all_bad(self):
        stats = array_stats(np.array([np.nan, np.nan]))
        assert stats["non_finite"] == 2
        assert "min" not in stats
