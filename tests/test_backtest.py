"""Tests for rolling-origin backtesting."""

import numpy as np
import pytest

from repro.backtest import BacktestConfig, BacktestResult, rolling_backtest
from repro.core.trainer import TrainConfig
from repro.data import CTSData
from repro.metrics import ForecastScores
from repro.space import ArchHyper, Architecture, Edge, HyperParameters


def _arch_hyper():
    arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn")))
    return ArchHyper(arch, HyperParameters(1, 3, 8, 8, 0, 0))


def _data(t=240, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    values = np.stack(
        [np.sin(2 * np.pi * steps / 12 + k) + 0.1 * rng.standard_normal(t) for k in range(4)]
    )
    return CTSData("sine", values[..., None].astype(np.float32), np.ones((4, 4), np.float32), "test")


FAST = BacktestConfig(
    n_folds=3, train=TrainConfig(epochs=1, batch_size=32), max_train_windows=64
)


class TestBacktest:
    def test_produces_one_score_per_fold(self):
        result = rolling_backtest(_arch_hyper(), _data(), p=6, q=3, config=FAST)
        assert len(result.fold_scores) == 3
        assert len(result.fold_origins) == 3
        assert all(np.isfinite(s.mae) for s in result.fold_scores)

    def test_origins_are_increasing(self):
        result = rolling_backtest(_arch_hyper(), _data(), p=6, q=3, config=FAST)
        assert result.fold_origins == sorted(result.fold_origins)

    def test_mean_mae_and_trend(self):
        scores = [
            ForecastScores(1.0, 1, 0, 0, 0),
            ForecastScores(2.0, 1, 0, 0, 0),
            ForecastScores(3.0, 1, 0, 0, 0),
        ]
        result = BacktestResult(fold_scores=scores, fold_origins=[10, 20, 30])
        assert result.mean_mae == pytest.approx(2.0)
        assert result.mae_trend == pytest.approx(1.0)

    def test_single_fold_trend_zero(self):
        result = BacktestResult(
            fold_scores=[ForecastScores(1.0, 1, 0, 0, 0)], fold_origins=[10]
        )
        assert result.mae_trend == 0.0

    def test_static_model_reused_across_folds(self):
        config = BacktestConfig(
            n_folds=2, retrain_per_fold=False,
            train=TrainConfig(epochs=1, batch_size=32), max_train_windows=64,
        )
        result = rolling_backtest(_arch_hyper(), _data(), p=6, q=3, config=config)
        assert len(result.fold_scores) == 2

    def test_rejects_too_short_data(self):
        with pytest.raises(ValueError):
            rolling_backtest(
                _arch_hyper(), _data(t=40), p=6, q=3,
                config=BacktestConfig(n_folds=2, min_train_fraction=0.9,
                                      test_fraction=0.05,
                                      train=TrainConfig(epochs=1)),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BacktestConfig(n_folds=0)
        with pytest.raises(ValueError):
            BacktestConfig(min_train_fraction=0.8, test_fraction=0.3)
