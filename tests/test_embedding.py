"""Tests for TS2Vec, Set-Transformer, and the task encoder."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.embedding import (
    MLPEmbedder,
    MeanPoolTaskEncoder,
    SetPool,
    TS2Vec,
    TS2VecConfig,
    TS2VecEncoder,
    TaskEncoder,
    build_preliminary_embedder,
    hierarchical_contrastive_loss,
    preliminary_task_embedding,
)

RNG = np.random.default_rng(0)


class TestTS2VecEncoder:
    def test_output_shape(self):
        enc = TS2VecEncoder(input_dim=2, hidden_dim=8, output_dim=6, depth=2)
        out = enc(Tensor(RNG.standard_normal((3, 12, 2)).astype(np.float32)))
        assert out.shape == (3, 12, 6)

    def test_per_timestep_representations_differ(self):
        enc = TS2VecEncoder(input_dim=1, hidden_dim=8, output_dim=4, depth=2)
        x = np.zeros((1, 16, 1), dtype=np.float32)
        x[0, 8, 0] = 5.0
        out = enc(Tensor(x)).data
        assert not np.allclose(out[0, 0], out[0, 8])


class TestContrastiveLoss:
    def test_loss_is_finite_scalar(self):
        z1 = Tensor(RNG.standard_normal((4, 8, 6)).astype(np.float32), requires_grad=True)
        z2 = Tensor(RNG.standard_normal((4, 8, 6)).astype(np.float32))
        loss = hierarchical_contrastive_loss(z1, z2)
        assert loss.data.shape == ()
        assert np.isfinite(loss.item())

    def test_identical_views_have_lower_loss_than_random(self):
        z = Tensor(5 * RNG.standard_normal((4, 8, 6)).astype(np.float32))
        other = Tensor(5 * RNG.standard_normal((4, 8, 6)).astype(np.float32))
        same = hierarchical_contrastive_loss(z, z).item()
        different = hierarchical_contrastive_loss(z, other).item()
        assert same < different

    def test_gradient_flows(self):
        z1 = Tensor(RNG.standard_normal((3, 4, 5)).astype(np.float32), requires_grad=True)
        z2 = Tensor(RNG.standard_normal((3, 4, 5)).astype(np.float32))
        hierarchical_contrastive_loss(z1, z2).backward()
        assert z1.grad is not None
        assert np.abs(z1.grad).sum() > 0


class TestTS2Vec:
    def _series(self, num=12, s=16, f=1):
        t = np.arange(s)
        phases = RNG.uniform(0, 2 * np.pi, size=(num, 1))
        clean = np.sin(2 * np.pi * t / 8 + phases)
        return (clean[..., None] + 0.05 * RNG.standard_normal((num, s, f))).astype(np.float32)

    def test_fit_reduces_loss(self):
        model = TS2Vec(input_dim=1, config=TS2VecConfig(epochs=4, batch_size=6,
                                                        hidden_dim=8, output_dim=8, depth=2))
        history = model.fit(self._series())
        assert len(history) == 4
        assert history[-1] < history[0]

    def test_encode_shapes(self):
        model = TS2Vec(input_dim=1, config=TS2VecConfig(output_dim=8, hidden_dim=8, depth=2))
        out = model.encode(self._series(num=5))
        assert out.shape == (5, 16, 8)

    def test_encode_windows_shape(self):
        model = TS2Vec(input_dim=1, config=TS2VecConfig(output_dim=8, hidden_dim=8, depth=2))
        windows = RNG.standard_normal((3, 4, 10, 1)).astype(np.float32)
        out = model.encode_windows(windows)
        assert out.shape == (3, 4, 10, 8)

    def test_fit_rejects_bad_shape(self):
        model = TS2Vec(input_dim=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 10, 1)))


class TestSetPool:
    def test_output_shape(self):
        pool = SetPool(in_dim=6, out_dim=8, rng=np.random.default_rng(0))
        out = pool(Tensor(RNG.standard_normal((3, 7, 6)).astype(np.float32)))
        assert out.shape == (3, 8)

    def test_permutation_invariance(self):
        pool = SetPool(in_dim=6, out_dim=8, rng=np.random.default_rng(0))
        pool.eval()
        x = RNG.standard_normal((1, 7, 6)).astype(np.float32)
        base = pool(Tensor(x)).data
        shuffled = x[:, np.random.default_rng(1).permutation(7), :]
        np.testing.assert_allclose(pool(Tensor(shuffled)).data, base, atol=1e-4)

    def test_depends_on_every_element(self):
        pool = SetPool(in_dim=4, out_dim=4, rng=np.random.default_rng(0))
        pool.eval()
        x = RNG.standard_normal((1, 5, 4)).astype(np.float32)
        base = pool(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 3] += 3.0
        assert not np.allclose(pool(Tensor(x2)).data, base)


class TestTaskEncoder:
    def test_output_is_vector(self):
        encoder = TaskEncoder(input_dim=8, intra_dim=8, output_dim=6)
        preliminary = RNG.standard_normal((5, 10, 8)).astype(np.float32)
        out = encoder(preliminary)
        assert out.shape == (6,)

    def test_trainable_end_to_end(self):
        encoder = TaskEncoder(input_dim=8, intra_dim=8, output_dim=6)
        out = encoder(RNG.standard_normal((5, 10, 8)).astype(np.float32))
        (out * out).sum().backward()
        grads = [p.grad for p in encoder.parameters() if p.grad is not None]
        assert grads

    def test_different_tasks_embed_differently(self):
        encoder = TaskEncoder(input_dim=8, intra_dim=8, output_dim=6)
        a = encoder(RNG.standard_normal((5, 10, 8)).astype(np.float32)).data
        b = encoder(RNG.standard_normal((3, 20, 8)).astype(np.float32)).data
        assert not np.allclose(a, b)

    def test_meanpool_variant(self):
        encoder = MeanPoolTaskEncoder(input_dim=8, output_dim=6)
        out = encoder(RNG.standard_normal((5, 10, 8)).astype(np.float32))
        assert out.shape == (6,)


class TestPreliminaryEmbedding:
    def test_mlp_embedder_shapes(self):
        embedder = MLPEmbedder(input_dim=2, output_dim=8)
        windows = RNG.standard_normal((3, 4, 10, 2)).astype(np.float32)
        assert embedder.encode_windows(windows).shape == (3, 4, 10, 8)

    def test_preliminary_embedding_averages_series(self):
        embedder = MLPEmbedder(input_dim=1, output_dim=8)
        windows = RNG.standard_normal((3, 4, 10, 1)).astype(np.float32)
        out = preliminary_task_embedding(embedder, windows)
        assert out.shape == (3, 10, 8)

    def test_factory(self):
        assert isinstance(build_preliminary_embedder("mlp", 1), MLPEmbedder)
        assert isinstance(build_preliminary_embedder("ts2vec", 1), TS2Vec)
        with pytest.raises(ValueError):
            build_preliminary_embedder("bert", 1)
