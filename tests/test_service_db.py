"""Unit tests of the service's sqlite job registry.

Covers the state machine in isolation from any HTTP or daemon machinery:
schema migration from an empty file, atomic job-state transitions with the
legal-hop table enforced, concurrent claims that can never double-claim,
corruption-safe reopen (a truncated db is a typed error, not a hang), and
content-addressed dedup/result semantics.
"""

import sqlite3
import threading

import pytest

from repro.service.db import (
    IllegalTransitionError,
    LEGAL_TRANSITIONS,
    RegistryCorruptError,
    RegistryError,
    SCHEMA_VERSION,
    ServiceDB,
    UnknownJobError,
)


def _db(tmp_path, name="registry.sqlite"):
    return ServiceDB(tmp_path / name)


def _submit(db, fingerprint="fp-0", kind="rank", tenant="alice", payload=None):
    job, deduped = db.submit_job(
        fingerprint, kind, payload or {"task": {"dataset": "X"}}, tenant=tenant
    )
    return job, deduped


class TestMigration:
    def test_empty_file_migrates_to_current_schema(self, tmp_path):
        db = _db(tmp_path)
        version = db._connection().execute("PRAGMA user_version").fetchone()[0]
        assert version == SCHEMA_VERSION
        tables = {
            row[0]
            for row in db._connection().execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert {"jobs", "tasks", "results"} <= tables

    def test_reopen_is_idempotent(self, tmp_path):
        _submit(_db(tmp_path))
        db = _db(tmp_path)  # second open: migration must be a no-op
        assert db.counts()["pending"] == 1

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "registry.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(RegistryError, match="refusing to downgrade"):
            ServiceDB(path)

    def test_truncated_db_is_a_typed_error_not_a_hang(self, tmp_path):
        path = tmp_path / "registry.sqlite"
        db = ServiceDB(path)
        _submit(db)
        db.close()
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(RegistryCorruptError):
            ServiceDB(path)

    def test_non_sqlite_garbage_is_corrupt(self, tmp_path):
        path = tmp_path / "registry.sqlite"
        path.write_bytes(b"this is not a database " * 64)
        with pytest.raises(RegistryCorruptError):
            ServiceDB(path)


class TestTransitions:
    def test_full_happy_path(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        assert job["status"] == "pending"
        claimed = db.claim_next("worker-a")
        assert claimed["id"] == job["id"]
        assert claimed["status"] == "running"
        assert claimed["owner"] == "worker-a"
        assert claimed["attempts"] == 1
        done = db.transition(job["id"], "done", from_state="running")
        assert done["status"] == "done"

    def test_every_illegal_hop_raises(self, tmp_path):
        db = _db(tmp_path)
        states = tuple(LEGAL_TRANSITIONS)
        for source in states:
            for target in states:
                if target in LEGAL_TRANSITIONS[source]:
                    continue
                job, _ = _submit(db, fingerprint=f"fp-{source}-{target}")
                # Walk the job into `source` through legal hops only.
                walk = {
                    "pending": [],
                    "running": ["running"],
                    "done": ["running", "done"],
                    "failed": ["running", "failed"],
                }[source]
                for hop in walk:
                    db.transition(job["id"], hop)
                with pytest.raises(IllegalTransitionError):
                    db.transition(job["id"], target)

    def test_from_state_guard(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        with pytest.raises(IllegalTransitionError, match="expected 'running'"):
            db.transition(job["id"], "done", from_state="running")

    def test_unknown_job(self, tmp_path):
        db = _db(tmp_path)
        with pytest.raises(UnknownJobError):
            db.transition("nope", "running")
        with pytest.raises(UnknownJobError):
            db.get_job("nope")

    def test_failed_requeue_cycle(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        db.claim_next("w")
        db.transition(job["id"], "failed", error="boom")
        failed = db.get_job(job["id"])
        assert failed["error"] == "boom"
        requeued = db.requeue(job["id"])
        assert requeued["status"] == "pending"
        claimed = db.claim_next("w")
        assert claimed["id"] == job["id"]
        assert claimed["attempts"] == 2

    def test_status_check_constraint(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        with pytest.raises(sqlite3.IntegrityError):
            db._connection().execute(
                "UPDATE jobs SET status = 'exploded' WHERE id = ?", (job["id"],)
            )


class TestClaims:
    def test_fifo_order(self, tmp_path):
        db = _db(tmp_path)
        first, _ = _submit(db, fingerprint="fp-1")
        second, _ = _submit(db, fingerprint="fp-2")
        assert db.claim_next("w")["id"] == first["id"]
        assert db.claim_next("w")["id"] == second["id"]
        assert db.claim_next("w") is None

    def test_concurrent_claims_never_double_claim(self, tmp_path):
        db_path = tmp_path / "registry.sqlite"
        seed = ServiceDB(db_path)
        n_jobs = 12
        for index in range(n_jobs):
            _submit(seed, fingerprint=f"fp-{index}")
        claimed: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker(name):
            # One ServiceDB per thread exercises cross-connection locking
            # (thread-local connections inside one instance would too, but
            # this is the harsher setup).
            mine = ServiceDB(db_path)
            barrier.wait()
            while True:
                job = mine.claim_next(name)
                if job is None:
                    break
                with lock:
                    claimed.append(job["id"])

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(claimed) == n_jobs
        assert len(set(claimed)) == n_jobs  # no job claimed twice

    def test_recover_orphans_requeues_running_jobs(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        db.claim_next("worker-dead")
        recovered = db.recover_orphans()
        assert [j["id"] for j in recovered] == [job["id"]]
        assert db.get_job(job["id"])["status"] == "pending"
        assert db.get_job(job["id"])["owner"] is None

    def test_recover_orphans_owner_prefix_filter(self, tmp_path):
        db = _db(tmp_path)
        mine, _ = _submit(db, fingerprint="fp-mine")
        other, _ = _submit(db, fingerprint="fp-other")
        db.claim_next("pool-a-1")
        db.claim_next("pool-b-1")
        recovered = db.recover_orphans(owner_prefix="pool-a")
        assert [j["id"] for j in recovered] == [mine["id"]]
        assert db.get_job(other["id"])["status"] == "running"

    def test_recover_orphans_stale_gate_spares_live_jobs(self, tmp_path):
        # A registry shared by two daemon processes: recovery must requeue
        # only jobs whose heartbeat went quiet, never a live worker's.
        db = _db(tmp_path)
        fresh, _ = _submit(db, fingerprint="fp-fresh")
        stale, _ = _submit(db, fingerprint="fp-stale")
        db.claim_next("w-live")
        db.claim_next("w-dead")
        db._connection().execute(
            "UPDATE jobs SET updated = updated - 120 WHERE id = ?", (stale["id"],)
        )
        recovered = db.recover_orphans(stale_after=60.0)
        assert [j["id"] for j in recovered] == [stale["id"]]
        assert db.get_job(fresh["id"])["status"] == "running"
        assert db.get_job(stale["id"])["status"] == "pending"


class TestHeartbeat:
    def test_heartbeat_refreshes_updated(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        db.claim_next("w")
        db._connection().execute(
            "UPDATE jobs SET updated = updated - 120 WHERE id = ?", (job["id"],)
        )
        backdated = db.get_job(job["id"])["updated"]
        assert db.heartbeat(job["id"], "w")
        assert db.get_job(job["id"])["updated"] > backdated
        # A fresh heartbeat keeps the job out of a stale-gated sweep.
        assert db.recover_orphans(stale_after=60.0) == []

    def test_heartbeat_guarded_by_owner_and_status(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db)
        assert not db.heartbeat(job["id"], "w")  # still pending
        db.claim_next("w")
        assert not db.heartbeat(job["id"], "other")  # someone else's claim
        db.transition(job["id"], "done")
        assert not db.heartbeat(job["id"], "w")  # terminal: cannot resurrect


class TestDedupAndResults:
    def test_duplicate_submission_dedupes(self, tmp_path):
        db = _db(tmp_path)
        job, deduped = _submit(db, tenant="alice")
        assert not deduped
        again, deduped = _submit(db, tenant="bob")
        assert deduped
        assert again["id"] == job["id"]
        assert again["submissions"] == 2
        assert again["tenants"] == ["alice", "bob"]
        assert db.counts()["pending"] == 1

    def test_duplicate_tenant_not_doubled(self, tmp_path):
        db = _db(tmp_path)
        _submit(db, tenant="alice")
        again, _ = _submit(db, tenant="alice")
        assert again["tenants"] == ["alice"]
        assert again["submissions"] == 2

    def test_result_roundtrip(self, tmp_path):
        db = _db(tmp_path)
        body = {"candidates": [{"x": 1}], "comparisons": 7}
        db.put_result("fp-r", "rank", body, job_id="j1")
        assert db.get_result("fp-r") == body
        assert db.get_result("fp-missing") is None

    def test_find_job_by_fingerprint(self, tmp_path):
        db = _db(tmp_path)
        job, _ = _submit(db, fingerprint="fp-42")
        assert db.find_job("fp-42")["id"] == job["id"]
        assert db.find_job("fp-nope") is None

    def test_counts_and_listing(self, tmp_path):
        db = _db(tmp_path)
        _submit(db, fingerprint="fp-1")
        _submit(db, fingerprint="fp-2")
        db.claim_next("w")
        counts = db.counts()
        assert counts == {"pending": 1, "running": 1, "done": 0, "failed": 0}
        assert len(db.list_jobs()) == 2
        assert len(db.list_jobs("running")) == 1

    def test_task_records(self, tmp_path):
        db = _db(tmp_path)
        db.record_task("tfp", "toy", {"p": 6, "q": 3})
        db.record_task("tfp", "toy", {"p": 6, "q": 3})  # idempotent
        tasks = db.list_tasks()
        assert len(tasks) == 1
        assert tasks[0]["spec"] == {"p": 6, "q": 3}
