"""Checkpoint/resume suite: interrupted runs must resume bitwise-identically.

Each pipeline stage (sample collection, T-AHC pretraining, evolutionary
search) is killed mid-way by an injected fault, resumed from its progress
checkpoint, and compared bitwise against an uninterrupted reference run.
Corruption, version, kind, and run-identity mismatches must discard the
checkpoint cleanly — never crash, never resume into the wrong run.
"""

import os
import pickle

import numpy as np
import pytest

from repro.comparator import (
    PretrainConfig,
    TAHC,
    collect_task_samples,
    pretrain_tahc,
)
from repro.data import CTSData
from repro.embedding import MLPEmbedder
from repro.runtime import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    EvalFailedError,
    EvalProgress,
    ProxyEvaluator,
    proxy_fingerprint,
)
from repro.search import EvolutionConfig, EvolutionarySearch
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8, 12), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)

BUDGET_FILE_ENV = "REPRO_TEST_BUDGET_FILE"
BUDGET_ENV = "REPRO_TEST_EVAL_BUDGET"


def _toy_task(t=200, seed=0, name="toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adj = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData(name, values, adj, "test"), p=6, q=3)


def _candidates(count, seed=0):
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    return space.sample_batch(count, np.random.default_rng(seed))


def cheap_eval(arch_hyper, task, config):
    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


def budgeted_eval(arch_hyper, task, config):
    """Succeeds for the first $REPRO_TEST_EVAL_BUDGET calls, then raises.

    Simulates a job killed after K evaluations; the counter lives in a file
    so the budget spans evaluator instances.
    """
    path = os.environ[BUDGET_FILE_ENV]
    try:
        with open(path) as handle:
            count = int(handle.read().strip() or 0)
    except (FileNotFoundError, ValueError):
        count = 0
    with open(path, "w") as handle:
        handle.write(str(count + 1))
    if count >= int(os.environ[BUDGET_ENV]):
        raise RuntimeError("injected kill: evaluation budget exhausted")
    return cheap_eval(arch_hyper, task, config)


@pytest.fixture
def budget_env(tmp_path, monkeypatch):
    monkeypatch.setenv(BUDGET_FILE_ENV, str(tmp_path / "budget-counter"))
    monkeypatch.setenv(BUDGET_ENV, "5")
    return monkeypatch


class TestCheckpointPrimitive:
    def test_roundtrip(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "a.ckpt", kind="demo", meta={"seed": 0})
        assert not ckpt.exists()
        assert ckpt.load() is None
        ckpt.save({"epoch": 3, "values": [1.0, 2.0]})
        assert ckpt.exists()
        assert Checkpoint(tmp_path / "a.ckpt", "demo", {"seed": 0}).load() == {
            "epoch": 3,
            "values": [1.0, 2.0],
        }

    def test_save_is_atomic(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "a.ckpt", kind="demo")
        ckpt.save({"epoch": 1})
        ckpt.save({"epoch": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["a.ckpt"]

    def test_wrong_kind_discarded(self, tmp_path):
        Checkpoint(tmp_path / "a.ckpt", kind="collect").save({"x": 1})
        assert Checkpoint(tmp_path / "a.ckpt", kind="pretrain").load() is None
        assert not (tmp_path / "a.ckpt").exists()  # discarded, not kept

    def test_meta_mismatch_discarded(self, tmp_path):
        Checkpoint(tmp_path / "a.ckpt", "demo", {"seed": 0}).save({"x": 1})
        assert Checkpoint(tmp_path / "a.ckpt", "demo", {"seed": 1}).load() is None
        assert not (tmp_path / "a.ckpt").exists()

    def test_old_format_version_discarded(self, tmp_path):
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION - 1,
            "kind": "demo",
            "meta": {},
            "state": {"x": 1},
        }
        with open(tmp_path / "a.ckpt", "wb") as handle:
            pickle.dump(payload, handle)
        assert Checkpoint(tmp_path / "a.ckpt", "demo").load() is None

    def test_truncated_file_discarded_cleanly(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "a.ckpt", kind="demo")
        ckpt.save({"epoch": 7})
        raw = (tmp_path / "a.ckpt").read_bytes()
        (tmp_path / "a.ckpt").write_bytes(raw[: len(raw) // 2])
        assert ckpt.load() is None  # no exception
        assert not ckpt.exists()

    def test_garbage_bytes_discarded_cleanly(self, tmp_path):
        (tmp_path / "a.ckpt").write_bytes(b"\x00definitely not a pickle")
        assert Checkpoint(tmp_path / "a.ckpt", "demo").load() is None

    def test_clear(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "a.ckpt", kind="demo")
        ckpt.save({"x": 1})
        ckpt.clear()
        assert not ckpt.exists()
        ckpt.clear()  # idempotent


class TestEvalProgress:
    def test_record_and_resume(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "p.ckpt", "eval-progress")
        progress = EvalProgress(ckpt)
        progress.record("fp-1", 0.5)
        progress.record("fp-2", 0.75)
        resumed = EvalProgress(Checkpoint(tmp_path / "p.ckpt", "eval-progress"))
        assert resumed.known("fp-1") == 0.5
        assert resumed.known("fp-2") == 0.75
        assert resumed.known("fp-3") is None

    def test_flush_cadence(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "p.ckpt", "eval-progress")
        progress = EvalProgress(ckpt, flush_every=3)
        progress.record("fp-1", 1.0)
        progress.record("fp-2", 2.0)
        assert not ckpt.exists()  # below the cadence, nothing on disk yet
        progress.record("fp-3", 3.0)
        assert ckpt.exists()
        progress.record("fp-4", 4.0)
        progress.flush()  # explicit flush persists the partial batch
        assert EvalProgress(ckpt).known("fp-4") == 4.0

    def test_evaluator_prefills_from_progress(self, tmp_path):
        task = _toy_task()
        candidates = _candidates(4)
        ckpt = Checkpoint(tmp_path / "p.ckpt", "eval-progress")

        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        expected = reference.evaluate_many(candidates, task)

        warm = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        warm.evaluate_pairs(
            [(ah, task) for ah in candidates], progress=EvalProgress(ckpt)
        )
        # A fresh evaluator must answer entirely from progress — its eval_fn
        # would raise if called at all.
        def boom(*args):
            raise AssertionError("eval_fn must not run on resume")

        resumed = ProxyEvaluator(workers=1, cache=None, eval_fn=boom)
        scores = resumed.evaluate_pairs(
            [(ah, task) for ah in candidates], progress=EvalProgress(ckpt)
        )
        assert scores == expected
        assert resumed.stats.resumed == 4
        assert "resumed from checkpoint" in resumed.stats.report()


class TestCollectResume:
    def test_interrupted_collection_resumes_bitwise(self, tmp_path, budget_env):
        tasks = [_toy_task(seed=0, name="a"), _toy_task(seed=1, name="b")]
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        config = PretrainConfig(shared_samples=2, random_samples=2)
        # 2 tasks x 4 candidates = 8 evaluations; the kill lands after 5.

        def embedder():
            return MLPEmbedder(input_dim=1, output_dim=8)

        reference = collect_task_samples(
            tasks, space, embedder(), config,
            evaluator=ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval),
        )

        ckpt = Checkpoint(tmp_path / "collect.ckpt", "eval-progress")
        with pytest.raises(EvalFailedError):
            collect_task_samples(
                tasks, space, embedder(), config,
                evaluator=ProxyEvaluator(
                    workers=1, cache=None, eval_fn=budgeted_eval
                ),
                checkpoint=ckpt,
            )
        assert ckpt.exists()  # partial progress flushed despite the crash

        budget_env.setenv(BUDGET_ENV, "999")
        resumed_evaluator = ProxyEvaluator(
            workers=1, cache=None, eval_fn=budgeted_eval
        )
        resumed = collect_task_samples(
            tasks, space, embedder(), config,
            evaluator=resumed_evaluator,
            checkpoint=Checkpoint(tmp_path / "collect.ckpt", "eval-progress"),
        )
        assert resumed_evaluator.stats.resumed == 5
        assert resumed_evaluator.stats.misses == 3  # only the tail is recomputed
        for ref_set, res_set in zip(reference, resumed):
            assert [ah.key() for ah in ref_set.arch_hypers] == [
                ah.key() for ah in res_set.arch_hypers
            ]
            np.testing.assert_array_equal(ref_set.scores, res_set.scores)


def _synthetic_sample_sets(n_tasks=2, shared=4, extra=4):
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    rng = np.random.default_rng(0)
    from repro.comparator import TaskSampleSet

    shared_pool = space.sample_batch(shared, rng)
    sets = []
    for t in range(n_tasks):
        pool = shared_pool + space.sample_batch(extra, rng)
        scores = np.array(
            [-ah.hyper.hidden_dim + 0.01 * t * ah.hyper.num_nodes for ah in pool]
        )
        preliminary = np.random.default_rng(100 + t).standard_normal(
            (4, 8, 8)
        ).astype(np.float32)
        sets.append(
            TaskSampleSet(
                task_name=f"task{t}", preliminary=preliminary,
                arch_hypers=pool, scores=scores, shared_count=shared,
            )
        )
    return sets


def _fresh_tahc():
    return TAHC(embed_dim=8, gin_layers=1, hidden_dim=8,
                preliminary_dim=8, task_embed_dim=8, seed=0)


class _InterruptAfter:
    """Wrap a function to raise KeyboardInterrupt after N successful calls."""

    def __init__(self, fn, after):
        self.fn = fn
        self.after = after
        self.calls = 0

    def __call__(self, *args, **kwargs):
        if self.calls >= self.after:
            raise KeyboardInterrupt("injected mid-training interrupt")
        self.calls += 1
        return self.fn(*args, **kwargs)


class TestPretrainResume:
    CONFIG = PretrainConfig(
        shared_samples=4, random_samples=4, epochs=6, pairs_per_task=8,
        patience=99,
    )

    def _reference(self):
        model = _fresh_tahc()
        history = pretrain_tahc(model, _synthetic_sample_sets(), self.CONFIG)
        return model, history

    def test_interrupted_pretraining_resumes_bitwise(self, tmp_path, monkeypatch):
        import repro.comparator.pretrain as pretrain_mod

        ref_model, ref_history = self._reference()

        ckpt_path = tmp_path / "pretrain.ckpt"
        model = _fresh_tahc()
        real_pairs = pretrain_mod.dynamic_pairs
        monkeypatch.setattr(
            pretrain_mod, "dynamic_pairs", _InterruptAfter(real_pairs, after=5)
        )
        with pytest.raises(KeyboardInterrupt):
            pretrain_tahc(
                model, _synthetic_sample_sets(), self.CONFIG,
                checkpoint=Checkpoint(ckpt_path, "pretrain"),
            )
        monkeypatch.setattr(pretrain_mod, "dynamic_pairs", real_pairs)

        # Resume into a *fresh* model: everything must come from the file.
        resumed_model = _fresh_tahc()
        resumed_history = pretrain_tahc(
            resumed_model, _synthetic_sample_sets(), self.CONFIG,
            checkpoint=Checkpoint(ckpt_path, "pretrain"),
        )
        assert resumed_history.losses == ref_history.losses
        assert resumed_history.accuracies == ref_history.accuracies
        assert resumed_history.deltas == ref_history.deltas
        for (name, param), (_, ref_param) in zip(
            resumed_model.named_parameters(), ref_model.named_parameters()
        ):
            np.testing.assert_array_equal(
                param.data, ref_param.data, err_msg=f"parameter {name} diverged"
            )

    def test_resume_of_finished_run_is_a_noop(self, tmp_path, monkeypatch):
        import repro.comparator.pretrain as pretrain_mod

        ckpt = Checkpoint(tmp_path / "pretrain.ckpt", "pretrain")
        model = _fresh_tahc()
        history = pretrain_tahc(model, _synthetic_sample_sets(), self.CONFIG,
                                checkpoint=ckpt)

        # Re-running must return the recorded history without training at all.
        def boom(*args, **kwargs):
            raise AssertionError("finished run must not train again")

        monkeypatch.setattr(pretrain_mod, "dynamic_pairs", boom)
        again = pretrain_tahc(
            _fresh_tahc(), _synthetic_sample_sets(), self.CONFIG,
            checkpoint=Checkpoint(tmp_path / "pretrain.ckpt", "pretrain"),
        )
        assert again.losses == history.losses

    def test_changed_config_discards_checkpoint(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "pretrain.ckpt", "pretrain")
        pretrain_tahc(_fresh_tahc(), _synthetic_sample_sets(), self.CONFIG,
                      checkpoint=ckpt)
        other = PretrainConfig(
            shared_samples=4, random_samples=4, epochs=6, pairs_per_task=8,
            patience=99, seed=1,
        )
        # Different run identity: must retrain from scratch, not resume.
        history = pretrain_tahc(
            _fresh_tahc(), _synthetic_sample_sets(), other,
            checkpoint=Checkpoint(tmp_path / "pretrain.ckpt", "pretrain"),
        )
        assert len(history.losses) == other.epochs


def _oracle_compare(score_fn):
    def compare(candidates):
        scores = np.array([score_fn(ah) for ah in candidates])
        return (scores[:, None] < scores[None, :]).astype(np.float32)

    return compare


class TestEvolutionResume:
    SPACE = JointSearchSpace(hyper_space=TINY_HYPER)
    CONFIG = EvolutionConfig(
        initial_samples=8, population_size=4, generations=3,
        offspring_per_generation=4, top_k=2,
    )
    SCORE = staticmethod(lambda ah: -ah.hyper.hidden_dim - 0.1 * ah.arch.num_edges)

    def test_interrupted_search_resumes_bitwise(self, tmp_path):
        reference = EvolutionarySearch(
            self.SPACE, _oracle_compare(self.SCORE), self.CONFIG, seed=3
        ).run()

        compare = _oracle_compare(self.SCORE)
        interrupted = _InterruptAfter(compare, after=2)
        ckpt_path = tmp_path / "evo.ckpt"
        with pytest.raises(KeyboardInterrupt):
            EvolutionarySearch(
                self.SPACE, interrupted, self.CONFIG, seed=3
            ).run(checkpoint=Checkpoint(ckpt_path, "evolution"))
        assert ckpt_path.exists()

        resumed = EvolutionarySearch(
            self.SPACE, compare, self.CONFIG, seed=3
        ).run(checkpoint=Checkpoint(ckpt_path, "evolution"))
        assert [ah.key() for ah in resumed.top_candidates] == [
            ah.key() for ah in reference.top_candidates
        ]
        assert [ah.key() for ah in resumed.final_population] == [
            ah.key() for ah in reference.final_population
        ]
        assert resumed.comparisons == reference.comparisons

    def test_different_seed_discards_checkpoint(self, tmp_path):
        compare = _oracle_compare(self.SCORE)
        ckpt_path = tmp_path / "evo.ckpt"
        EvolutionarySearch(self.SPACE, compare, self.CONFIG, seed=3).run(
            checkpoint=Checkpoint(ckpt_path, "evolution")
        )
        # A different seed is a different run: its result must match a fresh
        # (checkpoint-free) run of that seed, not the seed-3 leftovers.
        fresh = EvolutionarySearch(self.SPACE, compare, self.CONFIG, seed=4).run()
        resumed = EvolutionarySearch(self.SPACE, compare, self.CONFIG, seed=4).run(
            checkpoint=Checkpoint(ckpt_path, "evolution")
        )
        assert [ah.key() for ah in resumed.top_candidates] == [
            ah.key() for ah in fresh.top_candidates
        ]
