"""Gradient checks for every autodiff primitive against finite differences."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import Tensor, check_gradients


RNG = np.random.default_rng(7)


def _rand(*shape):
    return RNG.standard_normal(shape)


class TestElementwise:
    def test_add_broadcast(self):
        check_gradients(lambda a, b: a + b, [_rand(3, 4), _rand(4)])

    def test_sub_broadcast(self):
        check_gradients(lambda a, b: a - b, [_rand(2, 3, 4), _rand(3, 1)])

    def test_mul(self):
        check_gradients(lambda a, b: a * b, [_rand(5), _rand(5)])

    def test_div(self):
        check_gradients(lambda a, b: a / b, [_rand(3, 2), np.abs(_rand(3, 2)) + 1.0])

    def test_neg(self):
        check_gradients(lambda a: -a, [_rand(4)])

    def test_power(self):
        check_gradients(lambda a: a**3, [_rand(3, 3)])

    def test_sqrt(self):
        check_gradients(ad.sqrt, [np.abs(_rand(4)) + 0.5])

    def test_abs(self):
        check_gradients(ad.absolute, [np.abs(_rand(6)) + 0.1])

    def test_exp(self):
        check_gradients(ad.exp, [_rand(3, 2)])

    def test_log(self):
        check_gradients(ad.log, [np.abs(_rand(5)) + 0.5])

    def test_tanh(self):
        check_gradients(ad.tanh, [_rand(4, 4)])

    def test_sigmoid(self):
        check_gradients(ad.sigmoid, [_rand(4)])

    def test_relu(self):
        check_gradients(ad.relu, [np.abs(_rand(5)) + 0.1])

    def test_leaky_relu(self):
        check_gradients(lambda a: ad.leaky_relu(a, 0.1), [np.abs(_rand(5)) + 0.1])

    def test_gelu(self):
        check_gradients(ad.gelu, [_rand(4, 3)])

    def test_clip_interior(self):
        check_gradients(lambda a: ad.clip(a, -10.0, 10.0), [_rand(5)])

    def test_maximum(self):
        a, b = _rand(4), _rand(4)
        b = b + np.where(np.abs(a - b) < 0.2, 0.5, 0.0)  # avoid kink
        check_gradients(ad.maximum, [a, b])

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        check_gradients(lambda a, b: ad.where(cond, a, b), [_rand(3, 4), _rand(3, 4)])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: ad.sum(a), [_rand(3, 4)])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda a: ad.sum(a, axis=1, keepdims=True), [_rand(3, 4)])

    def test_sum_multi_axis(self):
        check_gradients(lambda a: ad.sum(a, axis=(0, 2)), [_rand(2, 3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda a: ad.mean(a, axis=0), [_rand(5, 2)])

    def test_mean_all(self):
        check_gradients(lambda a: ad.mean(a), [_rand(2, 2, 2)])

    def test_amax(self):
        a = np.arange(12.0).reshape(3, 4)  # unique values: no tie ambiguity
        check_gradients(lambda t: ad.amax(t, axis=1), [a])

    def test_variance_matches_numpy(self):
        a = _rand(4, 6)
        out = ad.variance(Tensor(a), axis=1)
        np.testing.assert_allclose(out.data, a.var(axis=1), rtol=1e-5)

    def test_variance_grad(self):
        check_gradients(lambda a: ad.variance(a, axis=-1), [_rand(3, 5)])


class TestLinalgAndShape:
    def test_matmul_2d(self):
        check_gradients(ad.matmul, [_rand(3, 4), _rand(4, 2)])

    def test_matmul_batched(self):
        check_gradients(ad.matmul, [_rand(2, 3, 4), _rand(2, 4, 5)])

    def test_matmul_broadcast_batch(self):
        check_gradients(ad.matmul, [_rand(2, 5, 3, 4), _rand(4, 2)])

    def test_matmul_vec(self):
        check_gradients(ad.matmul, [_rand(4), _rand(4)])

    def test_matmul_mat_vec(self):
        check_gradients(ad.matmul, [_rand(3, 4), _rand(4)])

    def test_reshape(self):
        check_gradients(lambda a: ad.reshape(a, (6, 2)), [_rand(3, 4)])

    def test_transpose(self):
        check_gradients(lambda a: ad.transpose(a, (2, 0, 1)), [_rand(2, 3, 4)])

    def test_swapaxes(self):
        check_gradients(lambda a: ad.swapaxes(a, 0, 2), [_rand(2, 3, 4)])

    def test_expand_squeeze(self):
        check_gradients(lambda a: ad.squeeze(ad.expand_dims(a, 1), 1), [_rand(3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda a: a[1:, :2], [_rand(3, 4)])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: a[idx], [_rand(3, 4)])

    def test_concat(self):
        check_gradients(lambda a, b: ad.concat([a, b], axis=1), [_rand(2, 3), _rand(2, 2)])

    def test_stack(self):
        check_gradients(lambda a, b: ad.stack([a, b], axis=0), [_rand(2, 3), _rand(2, 3)])

    def test_broadcast_to(self):
        check_gradients(lambda a: ad.broadcast_to(a, (4, 2, 3)), [_rand(2, 3)])

    def test_broadcast_to_expands_size_one_axes(self):
        check_gradients(lambda a: ad.broadcast_to(a, (3, 5)), [_rand(3, 1)])

    def test_broadcast_to_matches_tiled_concat(self):
        """broadcast_to of a row equals concat([row] * B) bitwise — the
        substitution the T-AHC head relies on."""
        row = Tensor(_rand(1, 6), requires_grad=True)
        tiled = ad.concat([row] * 5, axis=0)
        broadcast = ad.broadcast_to(row, (5, 6))
        np.testing.assert_array_equal(broadcast.data, tiled.data)
        broadcast.sum().backward()
        grad_b = row.grad.copy()
        row.grad = None
        tiled.sum().backward()
        np.testing.assert_array_equal(grad_b, row.grad)

    def test_pad(self):
        check_gradients(
            lambda a: ad.pad(a, ((0, 0), (1, 2))), [_rand(2, 3)]
        )

    def test_embedding(self):
        idx = np.array([[0, 1], [3, 1]])
        check_gradients(lambda w: ad.embedding(w, idx), [_rand(4, 5)])


class TestComposite:
    def test_softmax_rows_sum_to_one(self):
        out = ad.softmax(Tensor(_rand(3, 5)), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-5)

    def test_softmax_grad(self):
        weight = Tensor(_rand(3, 5))
        check_gradients(lambda a: ad.softmax(a, axis=-1) * weight, [_rand(3, 5)])

    def test_log_softmax_grad(self):
        weight = Tensor(_rand(2, 4))
        check_gradients(lambda a: ad.log_softmax(a, axis=-1) * weight, [_rand(2, 4)])

    def test_log_softmax_matches_log_of_softmax(self):
        a = _rand(4, 6)
        ls = ad.log_softmax(Tensor(a), axis=1).data
        np.testing.assert_allclose(ls, np.log(ad.softmax(Tensor(a), axis=1).data), rtol=1e-5)


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar(self):
        x = Tensor(_rand(2, 2), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(_rand(3), requires_grad=True)
        with ad.no_grad():
            y = x * 2.0
        assert y._backward is None
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * 3.0 + x
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_int_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.array([1.0, 2.0], dtype=np.float64))
        assert t.dtype == np.float64
