"""Dirty-data robustness: the mask-aware path end to end.

Covers the acceptance path of the robustness layer: a seeded corruption
profile with >=20% block missingness flows through sample collection,
curriculum pre-training, zero-shot ranking, and the HTTP service with zero
non-finite comparator labels (finite sentinel scores are legitimate), while
the clean path stays byte-for-byte what it was.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.comparator import RankingEngine
from repro.comparator.pretrain import PretrainHistory
from repro.comparator.tahc import TAHC
from repro.data import CTSData, corrupt_dataset, get_dataset
from repro.data.transforms import impute_missing
from repro.embedding import MLPEmbedder
from repro.experiments import DIRTY, SCALES, make_searcher, pretrain_variant, run_zero_shot
from repro.experiments.harness import PretrainedArtifacts, source_tasks, target_task
from repro.metrics.forecasting import evaluate_forecast
from repro.nn.loss import mae_loss, masked_mae_loss
from repro.service import Daemon, Engine, ServiceAPI, ServiceDB
from repro.service.protocol import ProtocolError, build_task
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task


class TestDirtyEndToEnd:
    """One DIRTY-scale pretrain amortized across the acceptance asserts."""

    @pytest.fixture(scope="class")
    def artifacts(self):
        return pretrain_variant(DIRTY, "full", seed=0, cache_dir=None)

    def test_dirty_sources_reach_the_bank(self, artifacts):
        # registry dirty variants and enrichment cycling both land in the bank
        assert any("~block_missing" in s.task_name for s in artifacts.sample_sets)

    def test_collect_labels_finite(self, artifacts):
        for sample_set in artifacts.sample_sets:
            assert np.isfinite(sample_set.scores).all(), sample_set.task_name

    def test_zero_shot_on_dirty_target(self, artifacts):
        task = target_task(DIRTY, "SZ-TAXI-missing", DIRTY.settings[0], seed=0)
        assert task.data.mask is not None
        assert (~task.data.mask).mean() >= 0.2  # the e2e missingness floor
        assert np.isfinite(task.data.values).all()
        result = run_zero_shot(artifacts, task, DIRTY, seed=0)
        assert np.isfinite(result.best_scores.mae)
        assert np.isfinite(result.best_scores.rmse)

    def test_comparator_labels_finite_unsanitized(self, artifacts):
        task = target_task(DIRTY, "SZ-TAXI-missing", DIRTY.settings[0], seed=0)
        searcher = make_searcher(artifacts, DIRTY, seed=0)
        engine = RankingEngine(
            artifacts.model,
            preliminary=searcher.embed_task(task),
            space=artifacts.space.hyper_space,
        )
        pool = artifacts.space.sample_batch(4, np.random.default_rng(0))
        wins = engine.win_matrix(pool, sanitize=False)
        assert np.isfinite(wins).all()

    def test_http_rank_on_dirty_dataset(self, artifacts, tmp_path):
        engine = Engine(
            artifacts,
            DIRTY,
            checkpoint_dir=tmp_path / "ckpt",
            artifact_dir=tmp_path / "artifacts",
            cache_enabled=False,
        )
        db = ServiceDB(tmp_path / "registry.sqlite")
        daemon = Daemon(db, engine, poll_interval=0.01)
        daemon.start()
        api = ServiceAPI(db, engine).start()
        try:
            payload = {
                "kind": "rank",
                "task": {"dataset": "SZ-TAXI-missing", "p": 6, "q": 6},
                "options": {"top_k": 1},
            }
            request = urllib.request.Request(
                api.address + "/rank",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                status, body = response.status, json.loads(response.read())
        finally:
            api.stop()
            daemon.stop()
        assert status == 200
        assert body["result"]["comparisons"] > 0
        assert len(body["result"]["candidates"]) == 1


def _cheap_service(tmp_path):
    """A SMOKE-sized service stack with handcrafted artifacts (fast boot)."""
    artifacts = PretrainedArtifacts(
        variant="full",
        model=TAHC(
            embed_dim=8, gin_layers=1, hidden_dim=8, preliminary_dim=8,
            task_embed_dim=8, seed=0,
        ),
        embedder=MLPEmbedder(input_dim=1, output_dim=8),
        space=JointSearchSpace(
            hyper_space=HyperSpace(
                num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,),
                output_dims=(8,), output_modes=(0, 1), dropout=(0,),
            )
        ),
        sample_sets=[],
        history=PretrainHistory(),
    )
    engine = Engine(artifacts, SCALES["smoke"], cache_enabled=False)
    db = ServiceDB(tmp_path / "registry.sqlite")
    api = ServiceAPI(db, engine).start()
    return api


def _post(address, path, payload):
    request = urllib.request.Request(
        address + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _inline_spec(values, **extra):
    spec = {
        "name": "inline-dirty",
        "values": values,
        "adjacency": np.ones((len(values), len(values))).tolist(),
        "p": 6,
        "q": 3,
    }
    spec.update(extra)
    return spec


def _series(t=120, n=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(10, 2, size=(n, t, 1)).astype(np.float32)


class TestServiceDirtyPayloads:
    def test_nan_without_policy_is_typed_422(self):
        values = _series().tolist()
        values[0][3][0] = float("nan")
        with pytest.raises(ProtocolError) as err:
            build_task(_inline_spec(values))
        assert err.value.status == 422
        assert "imputation" in str(err.value)

    def test_null_entries_hit_the_same_gate(self):
        values = _series().tolist()
        values[1][5][0] = None  # json null parses to NaN via float32 coercion
        with pytest.raises(ProtocolError) as err:
            build_task(_inline_spec(values))
        assert err.value.status == 422

    def test_imputation_policy_repairs_and_masks(self):
        values = _series().tolist()
        values[0][3][0] = float("nan")
        values[2][7][0] = None
        task = build_task(_inline_spec(values, imputation="mean"))
        assert np.isfinite(task.data.values).all()
        assert task.data.mask is not None
        assert not task.data.mask[0, 3, 0]
        assert not task.data.mask[2, 7, 0]

    def test_unknown_imputation_policy_rejected(self):
        with pytest.raises(ProtocolError) as err:
            build_task(_inline_spec(_series().tolist(), imputation="cubic"))
        assert err.value.status == 400

    def test_explicit_mask_anded_with_finiteness(self):
        values = _series().tolist()
        values[0][3][0] = float("nan")
        mask = np.ones((4, 120, 1), dtype=int)
        mask[1, 0, 0] = 0  # finite but untrusted
        task = build_task(
            _inline_spec(values, imputation="ffill", mask=mask.tolist())
        )
        assert not task.data.mask[0, 3, 0]  # non-finite forced out
        assert not task.data.mask[1, 0, 0]  # caller's distrust preserved

    def test_mask_shape_mismatch_rejected(self):
        mask = np.ones((4, 119, 1), dtype=int).tolist()
        with pytest.raises(ProtocolError) as err:
            build_task(_inline_spec(_series().tolist(), mask=mask))
        assert "mask shape" in str(err.value)

    def test_http_submit_nan_payload_is_422(self, tmp_path):
        api = _cheap_service(tmp_path)
        try:
            values = _series().tolist()
            values[0][0][0] = float("nan")  # json.dumps emits a NaN literal
            status, body = _post(
                api.address, "/jobs", {"kind": "rank", "task": _inline_spec(values)}
            )
            assert status == 422
            assert "imputation" in body["error"]
            # the same payload with a policy is accepted
            values_spec = _inline_spec(values, imputation="linear")
            status, body = _post(
                api.address,
                "/jobs",
                {"kind": "rank", "task": values_spec, "options": {"top_k": 1}},
            )
            assert status == 202
        finally:
            api.stop()


class TestMaskedLoss:
    def test_explicit_mask_scores_observed_only(self):
        prediction = Tensor(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
        target = np.array([[1.5, 99.0, 3.0]], dtype=np.float32)
        mask = np.array([[True, False, True]])
        loss = masked_mae_loss(prediction, target, mask=mask)
        assert loss.numpy() == pytest.approx(0.25)

    def test_mask_and_sentinel_are_exclusive(self):
        prediction = Tensor(np.zeros((1, 2), dtype=np.float32))
        target = np.ones((1, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            masked_mae_loss(
                prediction, target, mask=np.ones((1, 2), bool), null_value=0.0
            )

    def test_no_mask_falls_back_to_sentinel_with_warning(self):
        prediction = Tensor(np.array([[1.0, 2.0]], dtype=np.float32))
        target = np.array([[0.0, 4.0]], dtype=np.float32)
        with pytest.warns(DeprecationWarning):
            implicit = masked_mae_loss(prediction, target)
        explicit = masked_mae_loss(prediction, target, null_value=0.0)
        assert implicit.numpy() == pytest.approx(explicit.numpy())
        # the zero target was dropped by the sentinel: only |2-4| counts
        assert explicit.numpy() == pytest.approx(2.0)

    def test_explicit_sentinel_does_not_warn(self):
        import warnings

        prediction = Tensor(np.ones((1, 2), dtype=np.float32))
        target = np.ones((1, 2), dtype=np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            masked_mae_loss(prediction, target, null_value=0.0)

    def test_all_masked_target_yields_zero_loss(self):
        prediction = Tensor(np.ones((1, 3), dtype=np.float32))
        target = np.zeros((1, 3), dtype=np.float32)
        loss = masked_mae_loss(prediction, target, mask=np.zeros((1, 3), bool))
        assert loss.numpy() == pytest.approx(0.0)

    def test_all_true_mask_matches_plain_mae(self):
        rng = np.random.default_rng(0)
        prediction = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        target = rng.normal(size=(4, 6)).astype(np.float32)
        masked = masked_mae_loss(prediction, target, mask=np.ones((4, 6), bool))
        plain = mae_loss(prediction, target)
        assert masked.numpy() == pytest.approx(plain.numpy(), rel=1e-6)

    def test_mask_gradient_only_flows_through_observed(self):
        prediction = Tensor(np.zeros((1, 3), dtype=np.float32), requires_grad=True)
        target = np.array([[1.0, 1.0, 1.0]], dtype=np.float32)
        mask = np.array([[True, False, True]])
        masked_mae_loss(prediction, target, mask=mask).backward()
        assert prediction.grad[0, 1] == 0.0
        assert prediction.grad[0, 0] != 0.0


class TestMaskedMetrics:
    def test_mask_excludes_corrupted_targets(self):
        rng = np.random.default_rng(1)
        target = rng.normal(size=(10, 3, 4, 1))
        prediction = target + 0.1
        poisoned = target.copy()
        mask = np.ones(target.shape, dtype=bool)
        poisoned[:, :, 0, :] = 1e6
        mask[:, :, 0, :] = False
        scores = evaluate_forecast(prediction, poisoned, mask=mask)
        assert scores.mae == pytest.approx(0.1, rel=1e-6)

    def test_maskless_path_matches_pre_mask_metrics(self):
        rng = np.random.default_rng(2)
        target = rng.normal(size=(8, 3, 4, 1))
        prediction = target + rng.normal(scale=0.2, size=target.shape)
        plain = evaluate_forecast(prediction, target)
        all_true = evaluate_forecast(
            prediction, target, mask=np.ones(target.shape, bool)
        )
        assert plain.mae == pytest.approx(all_true.mae, rel=1e-9)
        assert plain.rmse == pytest.approx(all_true.rmse, rel=1e-9)

    def test_all_masked_scores_zero(self):
        target = np.ones((4, 2, 3, 1))
        scores = evaluate_forecast(target + 1, target, mask=np.zeros(target.shape, bool))
        assert scores.mae == 0.0 and scores.corr == 0.0


class TestMaskedTraining:
    def _dirty_task(self, seed=0):
        rng = np.random.default_rng(seed)
        values = np.abs(rng.normal(10, 2, size=(4, 140, 1))).astype(np.float32)
        data = CTSData("clean", values, np.ones((4, 4), np.float32), "test")
        return Task(corrupt_dataset(data, "block_missing", severity=0.3, seed=seed),
                    p=6, q=3, max_train_windows=64)

    def test_forecaster_trains_on_masked_task(self):
        from repro.core import TrainConfig, build_forecaster, train_forecaster

        task = self._dirty_task()
        prepared = task.prepared
        assert prepared.train.y_mask is not None
        space = JointSearchSpace(
            hyper_space=HyperSpace(num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,),
                                   output_dims=(8,), output_modes=(0,), dropout=(0,))
        )
        model = build_forecaster(space.sample(np.random.default_rng(0)),
                                 task.data, task.horizon, seed=0)
        result = train_forecaster(
            model, prepared.train, prepared.val, TrainConfig(epochs=2, batch_size=32, seed=0)
        )
        assert np.isfinite(result.best_val_mae)

    def test_clean_training_unaffected_by_mask_machinery(self):
        """The maskless trainer path is the historical one: deterministic."""
        from repro.core import TrainConfig, build_forecaster, train_forecaster

        rng = np.random.default_rng(3)
        values = np.abs(rng.normal(10, 2, size=(4, 140, 1))).astype(np.float32)
        data = CTSData("clean", values, np.ones((4, 4), np.float32), "test")
        task = Task(data, p=6, q=3, max_train_windows=64)
        space = JointSearchSpace(
            hyper_space=HyperSpace(num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,),
                                   output_dims=(8,), output_modes=(0,), dropout=(0,))
        )
        ah = space.sample(np.random.default_rng(1))

        def run():
            model = build_forecaster(ah, data, task.horizon, seed=5)
            return train_forecaster(
                model, task.prepared.train, task.prepared.val,
                TrainConfig(epochs=2, batch_size=32, seed=5),
            ).best_val_mae

        assert run() == run()


class TestDirtyEnrichment:
    def test_corruption_cycling_widens_the_bank(self):
        tasks = source_tasks(DIRTY, seed=0)
        names = {t.data.name for t in tasks}
        assert any("~" in name for name in names)
        for t in tasks:
            assert np.isfinite(t.data.values).all()

    def test_clean_scales_have_no_corruptions(self):
        from repro.experiments import SMOKE

        assert SMOKE.enrichment_corruptions == ()
        tasks = source_tasks(SMOKE, seed=0)
        assert all("~" not in t.data.name for t in tasks)
