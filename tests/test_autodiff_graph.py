"""Additional autodiff engine tests: graph mechanics and edge cases."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import Tensor, no_grad, unbroadcast
from repro.autodiff.numerical import numerical_gradient


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, (2, 3))
        np.testing.assert_array_equal(out, grad)

    def test_sums_leading_axes(self):
        grad = np.ones((4, 2, 3))
        out = unbroadcast(grad, (2, 3))
        np.testing.assert_array_equal(out, np.full((2, 3), 4.0))

    def test_sums_singleton_axes(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, (2, 1))
        np.testing.assert_array_equal(out, np.full((2, 1), 3.0))

    def test_mixed(self):
        grad = np.ones((5, 2, 3))
        out = unbroadcast(grad, (1, 3))
        np.testing.assert_array_equal(out, np.full((1, 3), 10.0))


class TestGraphEdgeCases:
    def test_deep_chain_gradient(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(100):
            y = y + x  # y = 101 * x
        y.backward()
        np.testing.assert_allclose(x.grad, [101.0])

    def test_shared_subexpression(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        shared = x * x  # x^2
        out = shared * shared  # x^4 -> d/dx = 4 x^3 = 32
        out.backward()
        np.testing.assert_allclose(x.grad, [32.0])

    def test_nested_no_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            with no_grad():
                a = x * 2.0
            b = x * 3.0
        c = x * 4.0
        assert a._backward is None and b._backward is None
        assert c._backward is not None

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 10.0, 100.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0, 200.0])

    def test_non_differentiable_leaf_untouched(self):
        x = Tensor(np.ones(2), requires_grad=True)
        c = Tensor(np.ones(2))  # constant
        (x * c).sum().backward()
        assert c.grad is None

    def test_zero_grad_resets(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(2)))

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestNumericalHelpers:
    def test_numerical_gradient_of_square(self):
        values = np.array([1.0, 2.0, 3.0])
        grad = numerical_gradient(lambda t: t * t, [values], wrt=0)
        np.testing.assert_allclose(grad, 2 * values, rtol=1e-5)

    def test_scatter_rows_gradient(self):
        """The ProbSparse scatter helper must route gradients to source rows."""
        from repro.nn.attention import _scatter_rows

        values = Tensor(np.ones((1, 2, 3)), requires_grad=True)
        index = np.array([[0, 3]])
        out = _scatter_rows(values, index, length=5)
        assert out.shape == (1, 5, 3)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(values.grad, np.full((1, 2, 3), 2.0))


class TestDtypeHandling:
    def test_mixed_dtype_operations(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float64))
        out = a + b
        assert np.isfinite(out.data).all()

    def test_python_scalars_in_expressions(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = 2.0 * x + 1.0 - 0.5 / (x + 1.0)
        y.sum().backward()
        assert x.grad is not None
