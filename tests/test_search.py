"""Tests for Round-Robin selection, evolutionary search, and zero-shot search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comparator import TAHC
from repro.data import CTSData
from repro.embedding import MLPEmbedder
from repro.metrics import top_k_regret
from repro.search import (
    EvolutionConfig,
    EvolutionarySearch,
    ZeroShotConfig,
    ZeroShotSearch,
    grid_search_hyper,
    random_search,
    round_robin_ranking,
    round_robin_top_k,
    win_counts,
)
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import ProxyConfig, Task

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3, 4), hidden_dims=(8, 12), output_dims=(8,),
    output_modes=(0, 1), dropout=(0,),
)
TINY_SPACE = JointSearchSpace(hyper_space=TINY_HYPER)


def _oracle_compare(score_fn):
    """A perfect comparator induced by a scalar quality function."""

    def compare(candidates):
        scores = np.array([score_fn(ah) for ah in candidates])
        return (scores[:, None] < scores[None, :]).astype(np.float32)

    return compare


class TestRoundRobin:
    def test_win_counts(self):
        matrix = np.array([[0, 1, 1], [0, 0, 1], [0, 0, 0]])
        np.testing.assert_array_equal(win_counts(matrix), [2, 1, 0])

    def test_top_k_selects_biggest_winners(self):
        matrix = np.array([[0, 0, 0], [1, 0, 1], [1, 0, 0]])
        assert round_robin_top_k(matrix, 2) == [1, 2]

    def test_full_ranking(self):
        matrix = np.array([[0, 0], [1, 0]])
        assert round_robin_ranking(matrix) == [1, 0]

    def test_handles_nontransitive_cycles(self):
        """A beats B beats C beats A: all tie at one win; selection is stable."""
        cycle = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        assert round_robin_top_k(cycle, 2) == [0, 1]

    def test_k_larger_than_n_clamped(self):
        assert len(round_robin_top_k(np.zeros((3, 3)), 10)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            round_robin_top_k(np.zeros((2, 3)), 1)
        with pytest.raises(ValueError):
            round_robin_top_k(np.zeros((2, 2)), 0)

    @given(st.integers(2, 12), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_perfect_win_matrix_recovers_true_ranking(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.permutation(n).astype(float)  # unique scores
        wins = (scores[:, None] < scores[None, :]).astype(float)
        ranking = round_robin_ranking(wins)
        assert [scores[i] for i in ranking] == sorted(scores)


class TestEvolutionarySearch:
    def test_oracle_comparator_finds_optimum(self):
        """With a perfect comparator the EA must land on top candidates."""
        score = lambda ah: -ah.hyper.hidden_dim - 0.1 * ah.arch.num_edges
        search = EvolutionarySearch(
            TINY_SPACE,
            _oracle_compare(score),
            EvolutionConfig(
                initial_samples=20, population_size=6, generations=4,
                offspring_per_generation=6, top_k=3,
            ),
            seed=0,
        )
        result = search.run()
        pool = TINY_SPACE.sample_batch(50, np.random.default_rng(9))
        pool_scores = [score(ah) for ah in pool]
        best_found = min(score(ah) for ah in result.top_candidates)
        assert best_found <= np.percentile(pool_scores, 20)

    def test_population_size_maintained(self):
        search = EvolutionarySearch(
            TINY_SPACE,
            _oracle_compare(lambda ah: ah.hyper.hidden_dim),
            EvolutionConfig(initial_samples=12, population_size=5, generations=2,
                            offspring_per_generation=4, top_k=2),
            seed=1,
        )
        result = search.run()
        assert len(result.final_population) == 5
        assert len(result.top_candidates) == 2

    def test_counts_comparisons(self):
        search = EvolutionarySearch(
            TINY_SPACE,
            _oracle_compare(lambda ah: 0.0),
            EvolutionConfig(initial_samples=8, population_size=4, generations=1,
                            offspring_per_generation=2, top_k=1),
        )
        result = search.run()
        assert result.comparisons > 0

    def test_all_results_searchable(self):
        search = EvolutionarySearch(
            TINY_SPACE,
            _oracle_compare(lambda ah: np.random.default_rng(0).random()),
            EvolutionConfig(initial_samples=10, population_size=4, generations=3,
                            offspring_per_generation=4, top_k=3),
            seed=2,
        )
        result = search.run()
        assert all(ah.is_searchable() for ah in result.final_population)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=1)
        with pytest.raises(ValueError):
            EvolutionConfig(initial_samples=2, population_size=10)
        with pytest.raises(ValueError):
            EvolutionConfig(crossover_prob=1.5)


def _toy_task(t=240, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    base = np.sin(2 * np.pi * steps / 12)
    values = np.stack([base + 0.1 * rng.standard_normal(t) for _ in range(4)])
    return Task(
        CTSData("toy", values[..., None].astype(np.float32),
                np.ones((4, 4), np.float32), "test"),
        p=6,
        q=3,
    )


class TestZeroShotSearch:
    def _searcher(self):
        model = TAHC(embed_dim=16, gin_layers=2, hidden_dim=16,
                     preliminary_dim=8, task_embed_dim=8, seed=0)
        embedder = MLPEmbedder(input_dim=1, output_dim=8)
        config = ZeroShotConfig(
            evolution=EvolutionConfig(
                initial_samples=8, population_size=4, generations=1,
                offspring_per_generation=2, top_k=2,
            ),
            final_train_epochs=2,
            batch_size=32,
        )
        return ZeroShotSearch(model, embedder, TINY_SPACE, config)

    def test_end_to_end(self):
        searcher = self._searcher()
        result = searcher.search(_toy_task())
        assert result.best in result.top_candidates
        assert len(result.candidate_scores) == len(result.top_candidates)
        assert np.isfinite(result.best_scores.mae)
        assert result.timings.embedding > 0
        assert result.timings.ranking > 0
        assert result.timings.training > 0
        assert result.timings.search == pytest.approx(
            result.timings.embedding + result.timings.ranking
        )

    def test_best_candidate_minimizes_validation(self):
        searcher = self._searcher()
        result = searcher.search(_toy_task())
        best_index = result.top_candidates.index(result.best)
        assert result.candidate_scores[best_index] == min(result.candidate_scores)

    def test_embedding_reflects_task_setting(self):
        searcher = self._searcher()
        e1 = searcher.embed_task(_toy_task())
        task2 = Task(_toy_task().data, p=12, q=6)
        e2 = searcher.embed_task(task2)
        assert e1.shape[1] != e2.shape[1]  # S = P + Q differs


class TestSearchBaselines:
    def test_random_search_returns_best(self):
        trace = random_search(
            _toy_task(), TINY_SPACE, n_candidates=3,
            proxy=ProxyConfig(epochs=1, batch_size=32),
        )
        assert trace.best_score == min(trace.scores)
        assert trace.best in trace.candidates

    def test_grid_search_sweeps_h_and_i(self):
        space = TINY_SPACE
        base = space.sample(np.random.default_rng(0))
        trace = grid_search_hyper(
            base, _toy_task(), hidden_dims=(8, 12), output_dims=(8,),
            proxy=ProxyConfig(epochs=1, batch_size=32),
        )
        assert len(trace.candidates) == 2
        hs = {ah.hyper.hidden_dim for ah in trace.candidates}
        assert hs == {8, 12}

    def test_random_search_regret_definition(self):
        scores = np.array([0.5, 0.1, 0.9])
        assert top_k_regret([1], scores) == 0.0
