"""Additional tests for result reporting."""

from repro.experiments import Aggregate, ResultTable


class TestWinCounts:
    def _table(self):
        table = ResultTable(title="T")
        table.add("D1", "MAE", "ours", Aggregate(1.0, 0.0))
        table.add("D1", "MAE", "theirs", Aggregate(2.0, 0.0))
        table.add("D2", "MAE", "ours", Aggregate(3.0, 0.0))
        table.add("D2", "MAE", "theirs", Aggregate(2.5, 0.0))
        table.add("D1", "CORR", "ours", Aggregate(0.9, 0.0))
        table.add("D1", "CORR", "theirs", Aggregate(0.8, 0.0))
        return table

    def test_win_counts(self):
        counts = self._table().win_counts()
        assert counts == {"ours": 2, "theirs": 1}

    def test_win_counts_after_mark_best(self):
        table = self._table()
        table.mark_best()
        assert table.win_counts() == {"ours": 2, "theirs": 1}

    def test_non_numeric_cells_ignored(self):
        table = ResultTable(title="T")
        table.add("D", "Arch", "a", "Arch(C=3: ...)")
        table.add("D", "Arch", "b", "Arch(C=4: ...)")
        assert table.win_counts() == {"a": 0, "b": 0}

    def test_single_column_rows_not_counted(self):
        table = ResultTable(title="T")
        table.add("D", "MAE", "only", "1.0")
        assert table.win_counts() == {"only": 0}

    def test_percentage_cells_parsed(self):
        table = ResultTable(title="T")
        table.add("D", "MAPE", "a", "10.5%")
        table.add("D", "MAPE", "b", "12.5%")
        assert table.win_counts()["a"] == 1
