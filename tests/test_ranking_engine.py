"""Encode-once RankingEngine suite: bitwise equivalence with the legacy
O(N²)-encoder path, exact encoder-forward counts, cross-generation caching,
mode restoration, and checkpoint/resume through the refactored rank stage."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.comparator import AHC, TAHC, RankingEngine, sanitize_win_matrix
from repro.comparator.ahc import pairwise_win_matrix
from repro.runtime import Checkpoint
from repro.search import EvolutionConfig, EvolutionarySearch
from repro.space import HyperSpace, JointSearchSpace, encode_batch

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8, 12), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)
SPACE = JointSearchSpace()


def _candidates(count, seed=0):
    return SPACE.sample_batch(count, np.random.default_rng(seed))


def _ahc(seed=0):
    return AHC(embed_dim=16, gin_layers=2, hidden_dim=16, seed=seed)


def _tahc(seed=0):
    return TAHC(embed_dim=16, gin_layers=2, hidden_dim=16,
                preliminary_dim=8, task_embed_dim=8, seed=seed)


def _preliminary(seed=0):
    return np.random.default_rng(seed).standard_normal((4, 10, 8)).astype(np.float32)


def _legacy_ahc_wins(model, candidates, batch_size=256):
    """The pre-refactor path: every ordered pair re-embeds both sides."""
    encodings = encode_batch(candidates)
    was_training = model.training
    model.eval()
    wins = pairwise_win_matrix(model, encodings, len(candidates), batch_size)
    model.train(was_training)
    return wins


def _legacy_tahc_wins(model, preliminary, candidates, batch_size=256):
    encodings = encode_batch(candidates)
    was_training = model.training
    model.eval()
    with no_grad():
        task = model.encode_task(preliminary)
        wins = pairwise_win_matrix(
            lambda ea, eb: model(task, ea, eb),
            encodings, len(candidates), batch_size,
        )
    model.train(was_training)
    return wins


class TestBitwiseEquivalence:
    """Engine win matrices must equal the legacy path bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ahc_matches_legacy(self, seed):
        model = _ahc(seed)
        candidates = _candidates(9, seed=seed + 10)
        engine = RankingEngine(model)
        np.testing.assert_array_equal(
            engine.win_matrix(candidates), _legacy_ahc_wins(model, candidates)
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_tahc_matches_legacy(self, seed):
        model = _tahc(seed)
        preliminary = _preliminary(seed)
        candidates = _candidates(7, seed=seed + 20)
        engine = RankingEngine(model, preliminary=preliminary)
        np.testing.assert_array_equal(
            engine.win_matrix(candidates),
            _legacy_tahc_wins(model, preliminary, candidates),
        )

    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_chunked_matches_legacy_at_same_batch_size(self, batch_size):
        # Pair scoring is chunked with the reference path's exact batch
        # boundaries (BLAS results can depend on matmul batch shape, so the
        # guarantee is per-batch-size, not across batch sizes).
        model = _ahc()
        candidates = _candidates(8, seed=5)
        engine = RankingEngine(model, batch_size=batch_size)
        np.testing.assert_array_equal(
            engine.win_matrix(candidates),
            _legacy_ahc_wins(model, candidates, batch_size=batch_size),
        )

    def test_tahc_chunked_matches_legacy(self):
        model = _tahc()
        preliminary = _preliminary()
        candidates = _candidates(6, seed=6)
        engine = RankingEngine(model, preliminary=preliminary, batch_size=7)
        np.testing.assert_array_equal(
            engine.win_matrix(candidates),
            _legacy_tahc_wins(model, preliminary, candidates, batch_size=7),
        )

    def test_cached_rerank_is_identical(self):
        """A second ranking served fully from cache must not drift."""
        model = _ahc()
        candidates = _candidates(6, seed=7)
        engine = RankingEngine(model)
        first = engine.win_matrix(candidates).copy()
        second = engine.win_matrix(candidates)
        np.testing.assert_array_equal(first, second)
        assert engine.stats.embed_misses == 6
        assert engine.stats.embed_hits == 6

    def test_predict_wins_delegates_to_engine(self):
        model = _ahc()
        candidates = _candidates(5, seed=8)
        np.testing.assert_array_equal(
            model.predict_wins(candidates), _legacy_ahc_wins(model, candidates)
        )

    def test_tahc_predict_wins_delegates_to_engine(self):
        model = _tahc()
        preliminary = _preliminary(3)
        candidates = _candidates(5, seed=9)
        np.testing.assert_array_equal(
            model.predict_wins(preliminary, candidates),
            _legacy_tahc_wins(model, preliminary, candidates),
        )


class TestEncoderForwardCounts:
    """Ranking N candidates must cost exactly N encoder forwards."""

    def test_ahc_rank_is_n_forwards(self):
        model = _ahc()
        candidates = _candidates(10)
        model.gin.stats.reset()
        RankingEngine(model).win_matrix(candidates)
        assert model.gin.stats.rows == 10  # not 2·N·(N−1) = 180

    def test_tahc_rank_is_n_forwards(self):
        model = _tahc()
        candidates = _candidates(8)
        model.gin.stats.reset()
        RankingEngine(model, preliminary=_preliminary()).win_matrix(candidates)
        assert model.gin.stats.rows == 8

    def test_legacy_path_is_quadratic(self):
        """The reference really does 2·N·(N−1) — what the engine removes."""
        model = _ahc()
        candidates = _candidates(5)
        model.gin.stats.reset()
        _legacy_ahc_wins(model, candidates)
        assert model.gin.stats.rows == 2 * 5 * 4

    def test_duplicate_candidates_encoded_once(self):
        model = _ahc()
        candidates = _candidates(4)
        model.gin.stats.reset()
        engine = RankingEngine(model)
        engine.embeddings(candidates + candidates)
        assert model.gin.stats.rows == 4
        assert engine.stats.embed_hits == 4

    def test_survivors_cached_across_generations(self):
        """Evolution survivors (and their re-rankings) cost no new encoder
        forwards; mutated offspring hash to new keys and are encoded once."""
        rng = np.random.default_rng(0)
        population = _candidates(6, seed=1)
        offspring = [SPACE.mutate(ah, rng) for ah in population[:3]]
        assert all(
            child.key() not in {ah.key() for ah in population}
            for child in offspring
        )
        model = _ahc()
        model.gin.stats.reset()
        engine = RankingEngine(model)
        engine.win_matrix(population)  # generation 0
        assert model.gin.stats.rows == 6
        engine.win_matrix(population + offspring)  # generation 1
        assert model.gin.stats.rows == 6 + 3  # only the offspring are new
        assert engine.stats.embed_hits == 6
        assert engine.cached_candidates == 9

    def test_task_embedding_computed_once(self):
        model = _tahc()
        engine = RankingEngine(model, preliminary=_preliminary())
        calls = 0
        real = model.encode_task

        def counting(preliminary):
            nonlocal calls
            calls += 1
            return real(preliminary)

        model.encode_task = counting
        engine.win_matrix(_candidates(4, seed=1))
        engine.win_matrix(_candidates(4, seed=2))
        assert calls == 1

    def test_clear_cache_forces_reencode(self):
        model = _ahc()
        candidates = _candidates(4)
        engine = RankingEngine(model)
        engine.win_matrix(candidates)
        engine.clear_cache()
        assert engine.cached_candidates == 0
        model.gin.stats.reset()
        engine.win_matrix(candidates)
        assert model.gin.stats.rows == 4


class TestModeRestoration:
    """Inference helpers must not clobber the module's train/eval state."""

    @pytest.mark.parametrize("training", [True, False])
    def test_engine_restores_mode(self, training):
        model = _ahc()
        model.train(training)
        RankingEngine(model).win_matrix(_candidates(3))
        assert model.training is training

    @pytest.mark.parametrize("training", [True, False])
    def test_tahc_predict_wins_restores_mode(self, training):
        model = _tahc()
        model.train(training)
        model.predict_wins(_preliminary(), _candidates(3))
        assert model.training is training

    @pytest.mark.parametrize("training", [True, False])
    def test_task_embedding_vector_restores_mode(self, training):
        model = _tahc()
        model.train(training)
        model.task_embedding_vector(_preliminary())
        assert model.training is training


class TestValidationAndSanitize:
    def test_rejects_missing_preliminary(self):
        with pytest.raises(ValueError, match="preliminary"):
            RankingEngine(_tahc())

    def test_rejects_spurious_preliminary(self):
        with pytest.raises(ValueError, match="not task-conditioned"):
            RankingEngine(_ahc(), preliminary=_preliminary())

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            RankingEngine(_ahc(), batch_size=0)

    def test_empty_candidate_list(self):
        assert RankingEngine(_ahc()).win_matrix([]).shape == (0, 0)

    def test_sanitize_passthrough_is_bitwise(self):
        wins = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=np.float32)
        assert sanitize_win_matrix(wins) is wins  # finite: same object

    def test_sanitize_replaces_non_finite_with_losses(self):
        wins = np.array([[0.0, np.nan], [np.inf, 0.0]], dtype=np.float32)
        cleaned = sanitize_win_matrix(wins)
        np.testing.assert_array_equal(cleaned, np.zeros((2, 2)))

    def test_evolution_survives_nan_compare_fn(self):
        """The centralized guard still protects custom CompareFns."""
        def poisoned(candidates):
            wins = np.ones((len(candidates), len(candidates)), dtype=np.float32)
            wins[0, :] = np.nan
            return wins

        space = JointSearchSpace(hyper_space=TINY_HYPER)
        config = EvolutionConfig(
            initial_samples=6, population_size=3, generations=1,
            offspring_per_generation=3, top_k=2,
        )
        result = EvolutionarySearch(space, poisoned, config, seed=0).run()
        assert len(result.top_candidates) == 2


class _InterruptAfter:
    def __init__(self, fn, after):
        self.fn = fn
        self.after = after
        self.calls = 0

    def __call__(self, *args, **kwargs):
        if self.calls >= self.after:
            raise KeyboardInterrupt("injected mid-search interrupt")
        self.calls += 1
        return self.fn(*args, **kwargs)


class TestSearchIntegration:
    SPACE = JointSearchSpace(hyper_space=TINY_HYPER)
    CONFIG = EvolutionConfig(
        initial_samples=8, population_size=4, generations=3,
        offspring_per_generation=4, top_k=2,
    )

    def _encodings_compare(self, model):
        """The pre-refactor CompareFn: encode every pair, every call."""
        def compare(candidates):
            return _legacy_ahc_wins(model, candidates)

        return compare

    def test_evolution_identical_under_engine(self):
        """The full EA selects bitwise-identical candidates whether the
        comparator runs through the engine or the legacy pair path."""
        model = AHC(embed_dim=16, gin_layers=2, hidden_dim=16, seed=1)
        reference = EvolutionarySearch(
            self.SPACE, self._encodings_compare(model), self.CONFIG, seed=3
        ).run()
        engine_run = EvolutionarySearch(
            self.SPACE, RankingEngine(model), self.CONFIG, seed=3
        ).run()
        assert [ah.key() for ah in engine_run.top_candidates] == [
            ah.key() for ah in reference.top_candidates
        ]
        assert [ah.key() for ah in engine_run.final_population] == [
            ah.key() for ah in reference.final_population
        ]

    def test_interrupted_engine_search_resumes_bitwise(self, tmp_path):
        """Checkpoint/resume through the refactored rank stage: a search
        killed mid-generation resumes (with a *fresh*, cold-cache engine)
        to the same winners as an uninterrupted run."""
        model = AHC(embed_dim=16, gin_layers=2, hidden_dim=16, seed=2)
        reference = EvolutionarySearch(
            self.SPACE, RankingEngine(model), self.CONFIG, seed=3
        ).run()

        interrupted = _InterruptAfter(RankingEngine(model), after=2)
        ckpt_path = tmp_path / "evo-engine.ckpt"
        with pytest.raises(KeyboardInterrupt):
            EvolutionarySearch(
                self.SPACE, interrupted, self.CONFIG, seed=3
            ).run(checkpoint=Checkpoint(ckpt_path, "evolution"))
        assert ckpt_path.exists()

        resumed = EvolutionarySearch(
            self.SPACE, RankingEngine(model), self.CONFIG, seed=3
        ).run(checkpoint=Checkpoint(ckpt_path, "evolution"))
        assert [ah.key() for ah in resumed.top_candidates] == [
            ah.key() for ah in reference.top_candidates
        ]
        assert [ah.key() for ah in resumed.final_population] == [
            ah.key() for ah in reference.final_population
        ]
        assert resumed.comparisons == reference.comparisons
