"""Integration tests for the fully-supervised AutoCTS+ pipeline."""

import numpy as np
import pytest

from repro.data import CTSData
from repro.search import AutoCTSPlusConfig, AutoCTSPlusSearch, EvolutionConfig
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import ProxyConfig, Task

TINY_SPACE = JointSearchSpace(
    hyper_space=HyperSpace(
        num_blocks=(1,), num_nodes=(3,), hidden_dims=(8, 12), output_dims=(8,),
        output_modes=(0, 1), dropout=(0,),
    )
)


def _task(t=220, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    values = np.stack(
        [np.sin(2 * np.pi * steps / 12 + k) + 0.1 * rng.standard_normal(t) for k in range(4)]
    )
    return Task(
        CTSData("toy", values[..., None].astype(np.float32), np.ones((4, 4), np.float32), "test"),
        p=6, q=3, max_train_windows=100,
    )


@pytest.fixture(scope="module")
def config():
    return AutoCTSPlusConfig(
        n_measured_samples=6,
        ahc_epochs=10,
        pairs_per_epoch=12,
        evolution=EvolutionConfig(
            initial_samples=8, population_size=4, generations=1,
            offspring_per_generation=2, top_k=2,
        ),
        final_train_epochs=1,
        batch_size=32,
        proxy=ProxyConfig(epochs=1, batch_size=32),
    )


class TestAutoCTSPlus:
    def test_collect_samples(self, config):
        search = AutoCTSPlusSearch(TINY_SPACE, config)
        measured = search.collect_samples(_task())
        assert len(measured) == 6
        assert all(np.isfinite(score) for _, score in measured)

    def test_comparator_training_reduces_loss(self, config):
        search = AutoCTSPlusSearch(TINY_SPACE, config)
        measured = search.collect_samples(_task())
        _, losses = search.train_comparator(measured)
        assert len(losses) == config.ahc_epochs
        assert losses[-1] < losses[0]

    def test_end_to_end(self, config):
        search = AutoCTSPlusSearch(TINY_SPACE, config)
        result = search.search(_task())
        assert result.best in result.top_candidates
        assert np.isfinite(result.best_scores.mae)
        assert len(result.measured) == config.n_measured_samples

    def test_search_is_task_specific(self, config):
        """Collecting samples on a different task yields different scores."""
        search = AutoCTSPlusSearch(TINY_SPACE, config)
        scores_a = [s for _, s in search.collect_samples(_task(seed=0))]
        scores_b = [s for _, s in search.collect_samples(_task(seed=5))]
        assert scores_a != scores_b
