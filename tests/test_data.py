"""Tests for the CTS data substrate."""

import numpy as np
import pytest

from repro.data import (
    CTSData,
    DATASET_SPECS,
    SOURCE_DATASETS,
    StandardScaler,
    TARGET_DATASETS,
    gaussian_kernel_adjacency,
    get_dataset,
    get_spec,
    iterate_batches,
    list_datasets,
    make_windows,
    random_sensor_positions,
    split_windows,
    subsample_adjacency,
    symmetric_normalized_laplacian_support,
    transition_matrix,
)


class TestGraph:
    def test_adjacency_symmetric_and_self_loops(self):
        rng = np.random.default_rng(0)
        adj = gaussian_kernel_adjacency(random_sensor_positions(10, rng))
        np.testing.assert_allclose(adj, adj.T)
        np.testing.assert_allclose(np.diag(adj), 1.0)

    def test_threshold_sparsifies(self):
        rng = np.random.default_rng(0)
        pos = random_sensor_positions(20, rng)
        dense = gaussian_kernel_adjacency(pos, threshold=0.0)
        sparse = gaussian_kernel_adjacency(pos, threshold=0.5)
        assert (sparse == 0).sum() > (dense == 0).sum()

    def test_transition_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        adj = gaussian_kernel_adjacency(random_sensor_positions(8, rng))
        np.testing.assert_allclose(transition_matrix(adj).sum(axis=1), 1.0, rtol=1e-5)

    def test_symmetric_support_is_symmetric(self):
        rng = np.random.default_rng(1)
        adj = gaussian_kernel_adjacency(random_sensor_positions(8, rng))
        sup = symmetric_normalized_laplacian_support(adj)
        np.testing.assert_allclose(sup, sup.T, rtol=1e-5)

    def test_subsample_preserves_weights(self):
        adj = np.arange(16, dtype=np.float32).reshape(4, 4)
        sub = subsample_adjacency(adj, np.array([1, 3]))
        np.testing.assert_array_equal(sub, [[5.0, 7.0], [13.0, 15.0]])


class TestRegistry:
    def test_all_datasets_materialize(self):
        for name in list_datasets():
            data = get_dataset(name, seed=0)
            spec = get_spec(name)
            assert data.n_series == spec.n_series
            assert data.n_steps == spec.n_steps
            assert np.isfinite(data.values).all()

    def test_deterministic_under_seed(self):
        a = get_dataset("PEMS-BAY", seed=3)
        b = get_dataset("PEMS-BAY", seed=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = get_dataset("PEMS-BAY", seed=1)
        b = get_dataset("PEMS-BAY", seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("NOPE")

    def test_source_and_target_disjoint(self):
        assert not set(SOURCE_DATASETS) & set(TARGET_DATASETS)

    def test_relative_scale_ordering_preserved(self):
        """Scaled-down sizes keep the paper's relative ordering (Table 3)."""
        big = DATASET_SPECS["PEMS-BAY"]
        small = DATASET_SPECS["Los-Loop"]
        assert big.paper_n_steps > small.paper_n_steps
        assert big.n_steps > small.n_steps

    def test_traffic_speed_is_positive_and_bounded(self):
        data = get_dataset("PEMS-BAY", seed=0)
        assert data.values.min() >= 3.0
        assert data.values.mean() > 30.0

    def test_demand_counts_are_nonnegative_integers(self):
        data = get_dataset("NYC-TAXI", seed=0)
        assert data.values.min() >= 0
        np.testing.assert_array_equal(data.values, np.round(data.values))

    def test_series_are_spatially_correlated(self):
        """Neighbouring traffic series should correlate more than random pairs."""
        data = get_dataset("PEMS-BAY", seed=0)
        series = data.values[:, :, 0]
        corr = np.corrcoef(series)
        adj = data.adjacency.copy()
        np.fill_diagonal(adj, 0.0)
        connected = corr[adj > 0.5]
        if connected.size:
            assert connected.mean() > 0.1


class TestCTSData:
    def _toy(self):
        values = np.arange(2 * 10 * 1, dtype=np.float32).reshape(2, 10, 1)
        return CTSData("toy", values, np.eye(2, dtype=np.float32), "test")

    def test_slice_time(self):
        sliced = self._toy().slice_time(2, 6)
        assert sliced.n_steps == 4
        assert sliced.values[0, 0, 0] == 2.0

    def test_slice_time_rejects_bad_range(self):
        with pytest.raises(ValueError):
            self._toy().slice_time(5, 100)

    def test_select_nodes(self):
        selected = self._toy().select_nodes(np.array([1]))
        assert selected.n_series == 1
        assert selected.adjacency.shape == (1, 1)

    def test_select_nodes_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            self._toy().select_nodes(np.array([5]))

    def test_rejects_inconsistent_adjacency(self):
        with pytest.raises(ValueError):
            CTSData("bad", np.zeros((3, 5, 1)), np.eye(2), "test")


class TestWindows:
    def _data(self, t=30):
        values = np.tile(np.arange(t, dtype=np.float32), (3, 1))[..., None]
        return CTSData("toy", values, np.eye(3, dtype=np.float32), "test")

    def test_multi_step_shapes(self):
        windows = make_windows(self._data(), p=4, q=2)
        assert windows.x.shape == (25, 4, 3, 1)
        assert windows.y.shape == (25, 2, 3, 1)

    def test_windows_are_contiguous(self):
        windows = make_windows(self._data(), p=4, q=2)
        # x of first sample: steps 0..3; y: steps 4..5
        np.testing.assert_array_equal(windows.x[0, :, 0, 0], [0, 1, 2, 3])
        np.testing.assert_array_equal(windows.y[0, :, 0, 0], [4, 5])

    def test_single_step_targets_qth_step(self):
        windows = make_windows(self._data(), p=4, q=3, single_step=True)
        assert windows.y.shape[1] == 1
        # Target of the first sample is step P+Q-1 = 6.
        assert windows.y[0, 0, 0, 0] == 6.0

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError):
            make_windows(self._data(t=5), p=4, q=2)

    def test_rejects_nonpositive_pq(self):
        with pytest.raises(ValueError):
            make_windows(self._data(), p=0, q=1)

    def test_split_ratio(self):
        windows = make_windows(self._data(t=103), p=2, q=2)  # 100 windows
        train, val, test = split_windows(windows, (7, 1, 2))
        assert (len(train), len(val), len(test)) == (70, 10, 20)

    def test_split_is_chronological(self):
        windows = make_windows(self._data(t=103), p=2, q=2)
        train, val, test = split_windows(windows, (7, 1, 2))
        assert train.x[-1, 0, 0, 0] < val.x[0, 0, 0, 0] < test.x[0, 0, 0, 0]

    def test_split_rejects_empty_partition(self):
        windows = make_windows(self._data(t=10), p=2, q=2)
        with pytest.raises(ValueError):
            split_windows(windows, (100, 1, 1))

    def test_batches_cover_everything_once(self):
        windows = make_windows(self._data(), p=4, q=2)
        seen = 0
        for x, y in iterate_batches(windows, batch_size=7):
            assert len(x) == len(y)
            seen += len(x)
        assert seen == len(windows)

    def test_shuffled_batches_permute(self):
        windows = make_windows(self._data(t=103), p=2, q=2)
        rng = np.random.default_rng(0)
        firsts = [x[0, 0, 0, 0] for x, _ in iterate_batches(windows, 10, rng=rng)]
        assert firsts != sorted(firsts)


class TestScaler:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5, 3, size=(4, 50, 2))
        scaler = StandardScaler()
        recovered = scaler.inverse_transform(scaler.fit_transform(values))
        np.testing.assert_allclose(recovered, values, rtol=1e-4)

    def test_transform_standardizes(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5, 3, size=(4, 200, 1))
        out = StandardScaler().fit_transform(values)
        assert abs(out.mean()) < 1e-4
        assert abs(out.std() - 1.0) < 1e-3

    def test_constant_feature_handled(self):
        values = np.ones((2, 10, 1))
        out = StandardScaler().fit_transform(values)
        assert np.isfinite(out).all()

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2, 1)))
