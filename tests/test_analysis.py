"""Tests for the search-result analysis utilities."""

import numpy as np
import pytest

from repro.analysis import (
    SearchSummary,
    arch_hyper_similarity,
    edge_jaccard,
    hyper_distance,
    operator_frequencies,
    spatial_temporal_ratio,
)
from repro.space import ArchHyper, Architecture, Edge, HyperParameters, JointSearchSpace


def _ah(edges, **hyper_overrides):
    arch = Architecture(3, edges)
    defaults = dict(num_blocks=2, num_nodes=3, hidden_dim=32, output_dim=64,
                    output_mode=0, dropout=0)
    defaults.update(hyper_overrides)
    return ArchHyper(arch, HyperParameters(**defaults))


GDCC_CHAIN = (Edge(0, 1, "gdcc"), Edge(1, 2, "gdcc"))
MIXED = (Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn"))


class TestOperatorStats:
    def test_frequencies_sum_to_one(self):
        freqs = operator_frequencies([_ah(MIXED), _ah(GDCC_CHAIN)])
        assert sum(freqs.values()) == pytest.approx(1.0)
        assert freqs["gdcc"] == pytest.approx(0.75)

    def test_frequencies_empty(self):
        freqs = operator_frequencies([])
        assert all(v == 0.0 for v in freqs.values())

    def test_spatial_ratio(self):
        assert spatial_temporal_ratio(_ah(MIXED)) == pytest.approx(0.5)
        assert spatial_temporal_ratio(_ah(GDCC_CHAIN)) == 0.0

    def test_spatial_ratio_ignores_skips(self):
        ah = _ah((Edge(0, 1, "skip"), Edge(1, 2, "dgcn")))
        assert spatial_temporal_ratio(ah) == 1.0


class TestSimilarity:
    def test_jaccard_identical(self):
        assert edge_jaccard(_ah(MIXED), _ah(MIXED)) == 1.0

    def test_jaccard_disjoint(self):
        a = _ah(MIXED)
        b = _ah((Edge(0, 1, "inf_t"), Edge(1, 2, "inf_s")))
        assert edge_jaccard(a, b) == 0.0

    def test_hyper_distance_zero_for_identical(self):
        assert hyper_distance(_ah(MIXED), _ah(MIXED)) == 0.0

    def test_hyper_distance_grows_with_difference(self):
        near = hyper_distance(_ah(MIXED), _ah(MIXED, hidden_dim=48))
        far = hyper_distance(_ah(MIXED), _ah(MIXED, hidden_dim=64, num_blocks=6))
        assert 0 < near < far

    def test_blended_similarity_bounds(self):
        space = JointSearchSpace()
        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = space.sample(rng), space.sample(rng)
            sim = arch_hyper_similarity(a, b)
            assert 0.0 <= sim <= 1.0

    def test_self_similarity_is_one(self):
        assert arch_hyper_similarity(_ah(MIXED), _ah(MIXED)) == 1.0


class TestSearchSummary:
    def test_summary_fields(self):
        summary = SearchSummary.from_arch_hypers([_ah(MIXED), _ah(GDCC_CHAIN, dropout=1)])
        assert summary.count == 2
        assert summary.mean_edges == 2.0
        assert summary.hyper_modes["C"] == 3

    def test_summary_render(self):
        text = SearchSummary.from_arch_hypers([_ah(MIXED)]).render()
        assert "operator usage" in text
        assert "modal hyperparameters" in text

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            SearchSummary.from_arch_hypers([])
