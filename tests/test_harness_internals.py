"""Tests for experiment-harness internals (variant wiring, overrides)."""

import numpy as np
import pytest

from repro.embedding import MeanPoolTaskEncoder, MLPEmbedder, TaskEncoder, TS2Vec
from repro.experiments import SMOKE, TINY, make_searcher, pretrain_variant
from repro.experiments.harness import (
    _build_variant_model,
    _fit_embedder,
    _pretrain_config,
    source_tasks,
)


class TestVariantWiring:
    def test_full_variant_uses_set_transformer(self):
        model = _build_variant_model(TINY, "full", seed=0)
        assert isinstance(model.task_encoder, TaskEncoder)

    def test_wo_set_transformer_uses_meanpool(self):
        model = _build_variant_model(TINY, "wo_set_transformer", seed=0)
        assert isinstance(model.task_encoder, MeanPoolTaskEncoder)

    def test_wo_shared_config_moves_samples(self):
        config = _pretrain_config(TINY, "wo_shared", seed=0)
        assert config.shared_samples == 0
        assert config.random_samples == TINY.shared_samples + TINY.random_samples

    def test_full_config_keeps_split(self):
        config = _pretrain_config(TINY, "full", seed=0)
        assert config.shared_samples == TINY.shared_samples
        assert config.random_samples == TINY.random_samples


class TestEmbedderFitting:
    def test_fit_embedder_noop_for_mlp(self):
        embedder = MLPEmbedder(input_dim=1, output_dim=8)
        _fit_embedder(embedder, [])  # must not raise even with no tasks

    def test_fit_embedder_trains_ts2vec(self):
        from repro.embedding import TS2VecConfig

        tasks = source_tasks(SMOKE, seed=0)
        embedder = TS2Vec(
            input_dim=1,
            config=TS2VecConfig(hidden_dim=8, output_dim=8, depth=1, epochs=1),
        )
        before = {k: v.copy() for k, v in embedder.encoder.state_dict().items()}
        _fit_embedder(embedder, tasks)
        after = embedder.encoder.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)


class TestSearcherOverrides:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return pretrain_variant(SMOKE, "full", seed=5, cache_dir=None)

    def test_top_k_override(self, artifacts):
        searcher = make_searcher(artifacts, SMOKE, top_k=1)
        assert searcher.config.evolution.top_k == 1
        searcher2 = make_searcher(artifacts, SMOKE)
        assert searcher2.config.evolution.top_k == SMOKE.top_k

    def test_initial_samples_override(self, artifacts):
        searcher = make_searcher(artifacts, SMOKE, initial_samples=5)
        assert searcher.config.evolution.initial_samples == 5
