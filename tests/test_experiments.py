"""Integration tests for the experiment harness (SMOKE scale, no cache)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER,
    SMOKE,
    TINY,
    Aggregate,
    ResultTable,
    aggregate_runs,
    metric_value,
    pretrain_variant,
    run_baseline,
    run_zero_shot,
    source_tasks,
    target_task,
)
from repro.metrics import ForecastScores


class TestConfig:
    def test_paper_scale_documents_table2(self):
        assert PAPER.hyper_space.cardinality == 216
        assert PAPER.initial_samples == 300_000

    def test_tiny_settings_mirror_paper_labels(self):
        paper_labels = [s.label for s in PAPER.settings]
        tiny_labels = [s.label for s in TINY.settings]
        assert paper_labels == tiny_labels

    def test_setting_lookup(self):
        assert TINY.setting("P-12/Q-12").p == 6
        with pytest.raises(KeyError):
            TINY.setting("P-1/Q-1")


class TestTasks:
    def test_target_task_built_for_every_cell(self):
        for dataset in SMOKE.target_datasets:
            for setting in SMOKE.settings:
                task = target_task(SMOKE, dataset, setting)
                assert task.data.name == dataset

    def test_window_cap_applied(self):
        task = target_task(TINY, "PEMS-BAY", TINY.settings[0])
        assert len(task.prepared.train) <= TINY.max_train_windows

    def test_source_tasks_nonempty(self):
        tasks = source_tasks(SMOKE, seed=0)
        assert tasks
        assert all(t.data.n_steps >= t.window_span * 3 for t in tasks)


class TestPretrainAndSearch:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return pretrain_variant(SMOKE, "full", seed=0, cache_dir=None)

    def test_pretrain_produces_history(self, artifacts):
        assert artifacts.history.losses
        assert artifacts.sample_sets

    def test_zero_shot_search_on_unseen_task(self, artifacts):
        task = target_task(SMOKE, "SZ-TAXI", SMOKE.settings[0])
        result = run_zero_shot(artifacts, task, SMOKE)
        assert np.isfinite(result.best_scores.mae)
        assert result.timings.search > 0

    def test_variant_wo_ts2vec_uses_mlp(self):
        artifacts = pretrain_variant(SMOKE, "wo_ts2vec", seed=0, cache_dir=None)
        from repro.embedding import MLPEmbedder

        assert isinstance(artifacts.embedder, MLPEmbedder)

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            pretrain_variant(SMOKE, "wo_everything", cache_dir=None)

    def test_cache_roundtrip(self, tmp_path):
        first = pretrain_variant(SMOKE, "full", seed=1, cache_dir=tmp_path)
        second = pretrain_variant(SMOKE, "full", seed=1, cache_dir=tmp_path)
        state1 = first.model.state_dict()
        state2 = second.model.state_dict()
        for key in state1:
            np.testing.assert_array_equal(state1[key], state2[key])

    def test_cache_write_is_atomic(self, tmp_path):
        pretrain_variant(SMOKE, "full", seed=1, cache_dir=tmp_path)
        assert list(tmp_path.glob("*.pkl"))
        assert not list(tmp_path.glob("*.tmp*"))

    def test_corrupt_cache_discarded_and_recomputed(self, tmp_path):
        first = pretrain_variant(SMOKE, "full", seed=2, cache_dir=tmp_path)
        (cache_file,) = tmp_path.glob("*.pkl")
        # Mangle the pickle stream the same way the seed's stale file was
        # (leading bytes stripped): loading must not crash the harness.
        cache_file.write_bytes(cache_file.read_bytes()[2:])
        second = pretrain_variant(SMOKE, "full", seed=2, cache_dir=tmp_path)
        state1 = first.model.state_dict()
        state2 = second.model.state_dict()
        for key in state1:
            np.testing.assert_array_equal(state1[key], state2[key])
        # The recompute repaired the cache: a third call is a clean hit.
        third = pretrain_variant(SMOKE, "full", seed=2, cache_dir=tmp_path)
        for key in state1:
            np.testing.assert_array_equal(state1[key], third.model.state_dict()[key])

    def test_unreadable_cache_payloads_treated_as_miss(self, tmp_path):
        import pickle

        from repro.experiments.harness import _load_artifact_cache

        garbage = tmp_path / "garbage.pkl"
        garbage.write_bytes(b"\x04y\x0f\x01 not a pickle")
        assert _load_artifact_cache(garbage) is None
        assert not garbage.exists()  # bad file removed

        truncated = tmp_path / "truncated.pkl"
        truncated.write_bytes(b"")
        assert _load_artifact_cache(truncated) is None

        # Pre-versioning payloads (a bare object, no format tag) are stale.
        unversioned = tmp_path / "unversioned.pkl"
        with open(unversioned, "wb") as handle:
            pickle.dump({"artifacts": "not-artifacts"}, handle)
        assert _load_artifact_cache(unversioned) is None
        assert not unversioned.exists()


class TestBaselineRunner:
    def test_run_baseline_smoke(self):
        task = target_task(SMOKE, "SZ-TAXI", SMOKE.settings[0])
        scores = run_baseline("MTGNN", task, SMOKE)
        assert np.isfinite(scores.mae)
        assert scores.mae > 0


class TestReporting:
    def _scores(self, mae):
        return ForecastScores(mae=mae, rmse=2 * mae, mape=0.1, rrse=0.5, corr=0.9)

    def test_aggregate_runs(self):
        agg = aggregate_runs([self._scores(1.0), self._scores(3.0)], "MAE")
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(1.0)
        assert "±" in str(agg)

    def test_metric_value(self):
        scores = self._scores(1.5)
        assert metric_value(scores, "RMSE") == pytest.approx(3.0)
        with pytest.raises(KeyError):
            metric_value(scores, "R2")

    def test_table_render_and_best_marking(self):
        table = ResultTable(title="Demo")
        table.add("D1", "MAE", "ours", Aggregate(1.0, 0.1))
        table.add("D1", "MAE", "theirs", Aggregate(2.0, 0.1))
        table.add("D1", "CORR", "ours", Aggregate(0.9, 0.0))
        table.add("D1", "CORR", "theirs", Aggregate(0.95, 0.0))
        table.mark_best()
        rendered = table.render()
        assert "*1.000±0.100*" in rendered  # lower MAE wins
        assert "*0.950±0.000*" in rendered  # higher CORR wins

    def test_table_save(self, tmp_path):
        table = ResultTable(title="Demo")
        table.add("D", "MAE", "m", "1.0")
        path = table.save(tmp_path, "demo")
        assert path.read_text().startswith("Demo")
