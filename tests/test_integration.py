"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.core import build_forecaster, evaluate_by_horizon, train_forecaster, TrainConfig
from repro.data import CTSData, get_dataset
from repro.experiments import SMOKE, pretrain_variant, run_zero_shot, target_task
from repro.space import JointSearchSpace, HyperSpace
from repro.tasks import Task


def _sine_task(t=200, n=4, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    values = np.stack(
        [np.sin(2 * np.pi * steps / 16 + k) + 0.05 * rng.standard_normal(t) for k in range(n)]
    )
    return Task(
        CTSData("sine", values[..., None].astype(np.float32), np.ones((n, n), np.float32), "test"),
        p=8, q=4, max_train_windows=120,
    )


TINY_SPACE = JointSearchSpace(
    hyper_space=HyperSpace(num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,),
                           output_dims=(8,), output_modes=(0, 1), dropout=(0,))
)


class TestHorizonEvaluation:
    def test_per_horizon_scores(self):
        task = _sine_task()
        model = build_forecaster(
            TINY_SPACE.sample(np.random.default_rng(0)), task.data, task.horizon
        )
        train_forecaster(model, task.prepared.train, task.prepared.val,
                         TrainConfig(epochs=3, batch_size=32, patience=3))
        by_horizon = evaluate_by_horizon(model, task.prepared.test)
        assert len(by_horizon) == task.horizon
        assert all(np.isfinite(s.mae) for s in by_horizon)

    def test_horizon_error_profile_plausible(self):
        """Later steps are at least roughly as hard as the first step."""
        task = _sine_task()
        model = build_forecaster(
            TINY_SPACE.sample(np.random.default_rng(1)), task.data, task.horizon
        )
        train_forecaster(model, task.prepared.train, task.prepared.val,
                         TrainConfig(epochs=4, batch_size=32, patience=4))
        by_horizon = evaluate_by_horizon(model, task.prepared.test)
        assert by_horizon[-1].mae >= by_horizon[0].mae * 0.5


class TestDeterminism:
    def test_zero_shot_pipeline_deterministic(self):
        """Same seed + same cache-free pretraining => identical searched model."""
        a = pretrain_variant(SMOKE, "full", seed=2, cache_dir=None)
        b = pretrain_variant(SMOKE, "full", seed=2, cache_dir=None)
        task_a = target_task(SMOKE, "SZ-TAXI", SMOKE.settings[0], seed=2)
        task_b = target_task(SMOKE, "SZ-TAXI", SMOKE.settings[0], seed=2)
        result_a = run_zero_shot(a, task_a, SMOKE, seed=2)
        result_b = run_zero_shot(b, task_b, SMOKE, seed=2)
        assert result_a.best.key() == result_b.best.key()
        assert result_a.best_scores.mae == pytest.approx(result_b.best_scores.mae)

    def test_dataset_and_training_deterministic(self):
        data = get_dataset("Los-Loop", seed=7)
        task = Task(data, p=6, q=3, max_train_windows=64)
        ah = TINY_SPACE.sample(np.random.default_rng(7))

        def run():
            model = build_forecaster(ah, data, task.horizon, seed=7)
            result = train_forecaster(
                model, task.prepared.train, task.prepared.val,
                TrainConfig(epochs=2, batch_size=32, seed=7),
            )
            return result.best_val_mae

        assert run() == pytest.approx(run())
