"""Tests for the joint search space: validity, encoding, genetic operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    ArchHyper,
    Architecture,
    CANDIDATE_OPERATORS,
    Edge,
    HyperParameters,
    HyperSpace,
    JointSearchSpace,
    MAX_ENCODING_NODES,
    encode_arch_hyper,
    encode_batch,
    getattr_hyper,
    sample_architecture,
)
from repro.space.encoding import HYPER_NODE


class TestArchitectureValidity:
    def test_valid_architecture_accepted(self):
        Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn")))

    def test_rejects_backward_edge(self):
        with pytest.raises(ValueError):
            Edge(2, 1, "gdcc")

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Edge(0, 1, "wavelet")

    def test_rejects_duplicate_pair(self):
        with pytest.raises(ValueError):
            Architecture(3, (Edge(0, 1, "gdcc"), Edge(0, 1, "dgcn"), Edge(1, 2, "skip")))

    def test_rejects_isolated_node(self):
        with pytest.raises(ValueError):
            Architecture(3, (Edge(0, 2, "gdcc"),))

    def test_rejects_more_than_two_incoming(self):
        edges = (
            Edge(0, 1, "gdcc"),
            Edge(0, 2, "gdcc"),
            Edge(0, 3, "gdcc"),
            Edge(1, 3, "dgcn"),
            Edge(2, 3, "inf_s"),
        )
        with pytest.raises(ValueError):
            Architecture(4, edges)

    def test_rejects_edge_beyond_num_nodes(self):
        with pytest.raises(ValueError):
            Architecture(2, (Edge(0, 1, "gdcc"), Edge(1, 5, "dgcn")))

    def test_operator_counts(self):
        arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "gdcc")))
        assert arch.operator_counts()["gdcc"] == 2

    def test_spatial_temporal_detection(self):
        t_only = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "inf_t")))
        assert t_only.has_temporal_operator() and not t_only.has_spatial_operator()

    def test_serialization_roundtrip(self):
        arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn")))
        assert Architecture.from_dict(arch.to_dict()) == arch

    @given(st.integers(2, 8), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_sampled_architectures_always_valid(self, num_nodes, seed):
        rng = np.random.default_rng(seed)
        arch = sample_architecture(num_nodes, rng)
        arch.validate()  # must not raise
        assert arch.num_nodes == num_nodes


class TestHyperSpace:
    def test_cardinality_matches_table2(self):
        assert HyperSpace().cardinality == 3 * 2 * 3 * 3 * 2 * 2

    def test_enumerate_covers_cardinality(self):
        space = HyperSpace()
        assert len(list(space.enumerate())) == space.cardinality

    def test_sample_in_space(self):
        space = HyperSpace()
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert space.contains(space.sample(rng))

    def test_vector_roundtrip(self):
        hp = HyperParameters(2, 5, 32, 64, 0, 1)
        np.testing.assert_array_equal(hp.to_vector(), [2, 5, 32, 64, 0, 1])
        assert HyperParameters.from_dict(hp.to_dict()) == hp

    def test_normalized_vector_in_unit_cube(self):
        space = HyperSpace()
        for hp in space.enumerate():
            vec = hp.normalized_vector(space)
            assert (vec >= 0).all() and (vec <= 1).all()

    def test_normalized_extremes(self):
        space = HyperSpace()
        low = HyperParameters(2, 5, 32, 64, 0, 0)
        high = HyperParameters(6, 7, 64, 256, 1, 1)
        np.testing.assert_allclose(low.normalized_vector(space), 0.0)
        np.testing.assert_allclose(high.normalized_vector(space), 1.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            HyperParameters(0, 5, 32, 64, 0, 0)
        with pytest.raises(ValueError):
            HyperParameters(2, 5, 32, 64, 2, 0)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            HyperSpace(num_blocks=())


class TestArchHyper:
    def test_rejects_node_count_mismatch(self):
        arch = sample_architecture(5, np.random.default_rng(0))
        hyper = HyperParameters(2, 7, 32, 64, 0, 0)
        with pytest.raises(ValueError):
            ArchHyper(arch=arch, hyper=hyper)

    def test_key_stable_and_distinct(self):
        space = JointSearchSpace()
        rng = np.random.default_rng(0)
        a, b = space.sample(rng), space.sample(rng)
        assert a.key() == ArchHyper.from_dict(a.to_dict()).key()
        assert a.key() != b.key()

    def test_searchable_filter(self):
        arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "inf_t")))
        ah = ArchHyper(arch, HyperParameters(2, 3, 32, 64, 0, 0))
        assert not ah.is_searchable()  # no spatial operator


class TestEncoding:
    def _sample(self, seed=0):
        return JointSearchSpace().sample(np.random.default_rng(seed))

    def test_encoding_shapes(self):
        enc = encode_arch_hyper(self._sample())
        m = MAX_ENCODING_NODES
        assert enc.adjacency.shape == (m, m)
        assert enc.op_indices.shape == (m,)
        assert enc.hyper_vector.shape == (6,)
        assert enc.mask.shape == (m,)

    def test_hyper_node_connects_to_all_operators(self):
        ah = self._sample()
        enc = encode_arch_hyper(ah)
        n_ops = ah.arch.num_edges
        for i in range(1, n_ops + 1):
            assert enc.adjacency[HYPER_NODE, i] == 1.0
            assert enc.adjacency[i, HYPER_NODE] == 1.0

    def test_self_loops_on_real_nodes_only(self):
        ah = self._sample()
        enc = encode_arch_hyper(ah)
        diag = np.diag(enc.adjacency)
        np.testing.assert_array_equal(diag, enc.mask)

    def test_dual_edges_follow_information_flow(self):
        arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn")))
        ah = ArchHyper(arch, HyperParameters(2, 3, 32, 64, 0, 0))
        enc = encode_arch_hyper(ah)
        # edge0 (0->1) feeds edge1 (1->2): dual adjacency[1, 2] == 1
        assert enc.adjacency[1, 2] == 1.0
        assert enc.adjacency[2, 1] == 0.0

    def test_padding_is_zero(self):
        ah = self._sample()
        enc = encode_arch_hyper(ah)
        real = ah.arch.num_edges + 1
        assert enc.adjacency[real:, :].sum() == 0
        assert enc.adjacency[:, real:].sum() == 0
        assert (enc.op_indices[real:] == -1).all()

    def test_op_indices_valid(self):
        ah = self._sample()
        enc = encode_arch_hyper(ah)
        real_ops = enc.op_indices[enc.op_indices >= 0]
        assert len(real_ops) == ah.arch.num_edges
        assert (real_ops < len(CANDIDATE_OPERATORS)).all()

    def test_batch_encoding_stacks(self):
        space = JointSearchSpace()
        rng = np.random.default_rng(0)
        batch = space.sample_batch(4, rng)
        adj, ops, hyper, mask = encode_batch(batch)
        assert adj.shape == (4, MAX_ENCODING_NODES, MAX_ENCODING_NODES)
        assert ops.shape == (4, MAX_ENCODING_NODES)
        assert hyper.shape == (4, 6)

    def test_distinct_arch_hypers_have_distinct_encodings(self):
        space = JointSearchSpace()
        rng = np.random.default_rng(1)
        a, b = space.sample_batch(2, rng)
        ea, eb = encode_arch_hyper(a), encode_arch_hyper(b)
        assert (
            not np.array_equal(ea.adjacency, eb.adjacency)
            or not np.array_equal(ea.op_indices, eb.op_indices)
            or not np.array_equal(ea.hyper_vector, eb.hyper_vector)
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_every_sample_encodable(self, seed):
        ah = JointSearchSpace().sample(np.random.default_rng(seed))
        enc = encode_arch_hyper(ah)
        assert enc.num_real_nodes == ah.arch.num_edges + 1
        assert enc.num_real_nodes <= MAX_ENCODING_NODES


class TestJointSearchSpace:
    def test_sample_batch_unique(self):
        space = JointSearchSpace()
        batch = space.sample_batch(20, np.random.default_rng(0))
        keys = {ah.key() for ah in batch}
        assert len(keys) == 20

    def test_samples_are_searchable(self):
        space = JointSearchSpace()
        rng = np.random.default_rng(0)
        for _ in range(30):
            assert space.sample(rng).is_searchable()

    def test_rejects_tiny_operator_set(self):
        with pytest.raises(ValueError):
            JointSearchSpace(operators=("gdcc",))

    @given(st.integers(0, 5_000))
    @settings(max_examples=100, deadline=None)
    def test_mutation_preserves_validity(self, seed):
        rng = np.random.default_rng(seed)
        space = JointSearchSpace()
        parent = space.sample(rng)
        child = space.mutate(parent, rng)
        child.arch.validate()
        assert space.hyper_space.contains(child.hyper)
        assert child.is_searchable()
        assert child.key() != parent.key()

    @given(st.integers(0, 5_000))
    @settings(max_examples=100, deadline=None)
    def test_crossover_preserves_validity(self, seed):
        rng = np.random.default_rng(seed)
        space = JointSearchSpace()
        a, b = space.sample(rng), space.sample(rng)
        child = space.crossover(a, b, rng)
        child.arch.validate()
        assert space.hyper_space.contains(child.hyper)
        assert child.is_searchable()

    def test_crossover_mixes_parents(self):
        rng = np.random.default_rng(3)
        space = JointSearchSpace()
        a, b = space.sample(rng), space.sample(rng)
        child = space.crossover(a, b, rng)
        assert child.arch in (a.arch, b.arch) or child.is_searchable()

    def test_getattr_hyper(self):
        hp = HyperParameters(4, 5, 48, 128, 1, 0)
        assert getattr_hyper(hp, "B") == 4
        assert getattr_hyper(hp, "H") == 48
        assert getattr_hyper(hp, "delta") == 0
