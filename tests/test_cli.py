"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "PEMS-BAY" in out
        assert "source" in out and "target" in out

    def test_sample_command(self, capsys):
        assert main(["sample", "--count", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("Arch(") == 2

    def test_sample_deterministic(self, capsys):
        main(["sample", "--count", "1", "--seed", "3"])
        first = capsys.readouterr().out
        main(["sample", "--count", "1", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second

    def test_train_command(self, capsys, tmp_path):
        code = main(
            [
                "train", "SZ-TAXI", "--p", "6", "--q", "3", "--epochs", "1",
                "--max-windows", "64", "--save", str(tmp_path / "model"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test MAE=" in out
        assert (tmp_path / "model" / "model.json").exists()

    def test_train_rejects_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["train", "NOPE", "--epochs", "1"])

    def test_search_command_smoke_scale(self, capsys):
        code = main(["search", "SZ-TAXI", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "searched:" in out
        assert "test MAE=" in out

    def test_autocts_parser_defaults(self):
        args = build_parser().parse_args(["autocts", "SZ-TAXI"])
        assert args.ahc_embed_dim == 32
        assert args.ahc_gin_layers == 3
        assert args.ahc_hidden_dim == 32

    def test_autocts_parser_custom_capacity(self):
        args = build_parser().parse_args(
            [
                "autocts", "SZ-TAXI", "--ahc-embed-dim", "16",
                "--ahc-gin-layers", "2", "--ahc-hidden-dim", "24",
            ]
        )
        assert args.ahc_embed_dim == 16
        assert args.ahc_gin_layers == 2
        assert args.ahc_hidden_dim == 24

    def test_autocts_command_smoke_scale(self, capsys):
        code = main(
            [
                "autocts", "SZ-TAXI", "--scale", "smoke", "--samples", "6",
                "--ahc-epochs", "5", "--ahc-embed-dim", "16",
                "--ahc-gin-layers", "2", "--ahc-hidden-dim", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AHC: embed 16, 2 GIN layers, hidden 16" in out
        assert "searched:" in out
        assert "test MAE=" in out


class TestServiceParsers:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8737
        assert args.scale == "smoke"
        assert args.variant == "full"
        assert args.daemons == 1
        assert args.db is None

    def test_serve_parser_custom(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--scale", "tiny", "--daemons", "3",
                "--db", "/tmp/reg.sqlite", "--no-eval-cache",
            ]
        )
        assert args.port == 0
        assert args.scale == "tiny"
        assert args.daemons == 3
        assert args.db == "/tmp/reg.sqlite"
        assert args.no_eval_cache

    def test_serve_parser_metrics_interval(self):
        assert build_parser().parse_args(["serve"]).metrics_interval is None
        args = build_parser().parse_args(["serve", "--metrics-interval", "7.5"])
        assert args.metrics_interval == 7.5

    def test_serve_rejects_malformed_metrics_interval_env(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_METRICS_INTERVAL", "soon")
        # Validated before artifacts pretrain, so this fails fast as the
        # usual typed-ConfigError exit 2.
        assert main(["serve", "--port", "0"]) == 2
        assert "REPRO_METRICS_INTERVAL" in capsys.readouterr().err

    def test_trace_report_parser_job_filter(self):
        assert build_parser().parse_args(["trace", "report", "t.jsonl"]).job is None
        args = build_parser().parse_args(
            ["trace", "report", "t.jsonl", "--job", "job-1"]
        )
        assert args.job == "job-1"

    def test_submit_parser_defaults(self):
        args = build_parser().parse_args(["submit", "SZ-TAXI"])
        assert args.kind == "rank"
        assert args.p == 6 and args.q == 6
        assert not args.sync and not args.wait
        assert args.url is None

    def test_submit_parser_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "SZ-TAXI", "--kind", "explode"])

    def test_submit_sync_rejects_non_rank(self, capsys):
        code = main(
            ["submit", "SZ-TAXI", "--kind", "collect", "--sync",
             "--url", "http://127.0.0.1:1"]
        )
        assert code == 2
        assert "--sync" in capsys.readouterr().err
