"""Extra numerical-fidelity tests against independent references."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines.fedformer import dft_matrices
from repro.metrics import corr
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.operators import GDCC, OperatorContext


class TestAttentionReference:
    def test_scaled_dot_product_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((1, 4, 8))
        k = rng.standard_normal((1, 4, 8))
        v = rng.standard_normal((1, 4, 8))
        out = scaled_dot_product_attention(Tensor(q), Tensor(k), Tensor(v)).numpy()

        scores = q @ k.transpose(0, 2, 1) / np.sqrt(8)
        weights = np.exp(scores - scores.max(-1, keepdims=True))
        weights /= weights.sum(-1, keepdims=True)
        expected = weights @ v
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_attention_is_permutation_equivariant(self):
        """Self-attention without masks commutes with input permutation."""
        mha = MultiHeadAttention(8, num_heads=2, rng=np.random.default_rng(0))
        mha.eval()
        x = np.random.default_rng(1).standard_normal((1, 5, 8)).astype(np.float32)
        perm = np.random.default_rng(2).permutation(5)
        base = mha(Tensor(x)).numpy()
        permuted = mha(Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(permuted, base[:, perm], atol=1e-4)


class TestDFT:
    def test_full_dft_roundtrip(self):
        """cos/sin bases (unmasked) must implement an invertible DFT."""
        steps = 8
        cos, sin = dft_matrices(steps)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(steps)
        real = cos @ x
        imag = sin @ x  # note: ``sin`` is -sin(angles), so imag = Im(X_k)
        # inverse: x = (cos^T real - sin_true^T imag) / N, sin_true = -sin.
        restored = (cos.T @ real + sin.T @ imag) / steps
        np.testing.assert_allclose(restored, x, atol=1e-4)

    def test_dft_of_constant_concentrates_at_dc(self):
        cos, sin = dft_matrices(8)
        x = np.ones(8)
        real = cos @ x
        assert abs(real[0]) == pytest.approx(8.0)
        np.testing.assert_allclose(real[1:], 0.0, atol=1e-4)


class TestGDCCDilation:
    def test_dilated_receptive_field(self):
        """With dilation d and kernel 2, output t depends on t and t-d only."""
        context = OperatorContext(
            hidden_dim=4, n_nodes=2, rng=np.random.default_rng(0)
        )
        op = GDCC(context, kernel_size=2, dilation=3)
        op.eval()
        x = np.random.default_rng(1).standard_normal((1, 4, 2, 10)).astype(np.float32)
        base = op(Tensor(x)).numpy().copy()
        x2 = x.copy()
        x2[..., 2] += 5.0  # perturb time step 2
        out = op(Tensor(x2)).numpy()
        changed = ~np.isclose(out, base, rtol=1e-5).all(axis=(0, 1, 2))
        # Only steps 2 and 2+3=5 may change.
        assert changed[2] and changed[5]
        assert not changed[[0, 1, 3, 4, 6, 7, 8, 9]].any()


class TestCorrEdgeCases:
    def test_constant_series_skipped(self):
        pred = np.ones((10, 2))
        targ = np.ones((10, 2))
        assert corr(pred, targ) == 0.0  # zero-variance pairs are skipped

    def test_mixed_constant_and_varying(self):
        rng = np.random.default_rng(0)
        targ = np.column_stack([np.ones(20), rng.standard_normal(20)])
        pred = targ.copy()
        assert corr(pred, targ) == pytest.approx(1.0)
