"""Cross-cutting property-based tests (hypothesis).

These exercise invariants that individual unit tests cannot cover
exhaustively: autodiff correctness on composed expressions, search-space
closure under repeated genetic operations, encoding determinism, and the
data pipeline's shape contracts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import autodiff as ad
from repro.autodiff import Tensor
from repro.comparator import curriculum_schedule
from repro.data import CTSData, StandardScaler, make_windows
from repro.search import round_robin_top_k
from repro.space import (
    ArchHyper,
    HyperSpace,
    JointSearchSpace,
    encode_arch_hyper,
)

small_floats = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


class TestAutodiffProperties:
    @given(
        hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=4), elements=small_floats)
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_of_parts_equals_whole(self, values):
        t = Tensor(values, requires_grad=True)
        (t * 3.0 + t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(values, 5.0))

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
                   elements=small_floats)
    )
    @settings(max_examples=60, deadline=None)
    def test_linearity_of_gradient(self, values):
        """grad of (a * x).sum() is a, for any constant a."""
        t = Tensor(values, requires_grad=True)
        (t * 7.5).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(values, 7.5))

    @given(
        hnp.arrays(np.float64, st.integers(2, 12), elements=small_floats)
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_distribution(self, values):
        out = ad.softmax(Tensor(values), axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 3), st.integers(2, 5)),
                   elements=small_floats)
    )
    @settings(max_examples=60, deadline=None)
    def test_tanh_bounded(self, values):
        out = ad.tanh(Tensor(values)).data
        assert (np.abs(out) <= 1.0).all()

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_matmul_shape_contract(self, a, b, c):
        rng = np.random.default_rng(0)
        out = ad.matmul(Tensor(rng.normal(size=(a, b))), Tensor(rng.normal(size=(b, c))))
        assert out.shape == (a, c)


class TestSearchSpaceClosure:
    @given(st.integers(0, 2_000), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_mutation_chains_stay_valid(self, seed, depth):
        """Arbitrary chains of mutations never leave the valid space."""
        rng = np.random.default_rng(seed)
        space = JointSearchSpace()
        current = space.sample(rng)
        for _ in range(depth):
            current = space.mutate(current, rng)
            current.arch.validate()
            assert space.hyper_space.contains(current.hyper)
            assert current.is_searchable()

    @given(st.integers(0, 2_000))
    @settings(max_examples=60, deadline=None)
    def test_serialization_roundtrip(self, seed):
        space = JointSearchSpace()
        ah = space.sample(np.random.default_rng(seed))
        restored = ArchHyper.from_dict(ah.to_dict())
        assert restored == ah
        assert restored.key() == ah.key()

    @given(st.integers(0, 2_000))
    @settings(max_examples=60, deadline=None)
    def test_encoding_is_deterministic(self, seed):
        space = JointSearchSpace()
        ah = space.sample(np.random.default_rng(seed))
        e1, e2 = encode_arch_hyper(ah), encode_arch_hyper(ah)
        np.testing.assert_array_equal(e1.adjacency, e2.adjacency)
        np.testing.assert_array_equal(e1.op_indices, e2.op_indices)
        np.testing.assert_array_equal(e1.hyper_vector, e2.hyper_vector)

    @given(st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_hyper_normalization_invertible_ordering(self, seed):
        """Normalized vectors preserve the ordering of each component."""
        space = HyperSpace()
        rng = np.random.default_rng(seed)
        a, b = space.sample(rng), space.sample(rng)
        va, vb = a.normalized_vector(space), b.normalized_vector(space)
        raw_a, raw_b = a.to_vector(), b.to_vector()
        for i in range(6):
            if raw_a[i] < raw_b[i]:
                assert va[i] < vb[i]
            elif raw_a[i] > raw_b[i]:
                assert va[i] > vb[i]


class TestDataPipelineProperties:
    @given(st.integers(2, 5), st.integers(30, 80), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_window_counts(self, n, t, p, q):
        values = np.random.default_rng(0).normal(size=(n, t, 1)).astype(np.float32)
        data = CTSData("x", values, np.eye(n, dtype=np.float32), "test")
        windows = make_windows(data, p, q)
        assert len(windows) == t - (p + q) + 1
        assert windows.x.shape == (len(windows), p, n, 1)

    @given(
        hnp.arrays(
            np.float64, st.tuples(st.integers(2, 4), st.integers(10, 40), st.integers(1, 3)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_scaler_roundtrip(self, values):
        scaler = StandardScaler()
        restored = scaler.inverse_transform(scaler.fit_transform(values))
        np.testing.assert_allclose(restored, values, atol=1e-2, rtol=1e-3)


class TestSelectionProperties:
    @given(st.integers(2, 10), st.integers(1, 10), st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_round_robin_returns_distinct_indices(self, n, k, seed):
        wins = (np.random.default_rng(seed).random((n, n)) > 0.5).astype(float)
        np.fill_diagonal(wins, 0)
        chosen = round_robin_top_k(wins, k)
        assert len(chosen) == min(k, n)
        assert len(set(chosen)) == len(chosen)

    @given(st.integers(0, 30), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_curriculum_bounds(self, total, epochs):
        schedule = curriculum_schedule(total, epochs)
        assert len(schedule) == epochs
        assert all(0 <= d <= total for d in schedule)
        assert schedule[-1] == total
