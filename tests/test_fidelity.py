"""Tests for the successive-halving fidelity dimension (docs/fidelity.md).

The contracts under test, in order of importance:

* **bitwise inertness** — with no schedule configured, fingerprints, cache
  keys, evaluator outputs, pairing RNG streams, and service score material
  are identical to a build without the fidelity machinery;
* **warm-promotion equivalence** — a candidate promoted through the rungs
  (resuming from warm snapshots) lands on *exactly* the score a fresh
  full-fidelity run produces, on the serial and the pool backend;
* **versioned resume** — progress files written under a different
  ``CACHE_KEY_VERSION`` refuse with a typed error instead of mixing
  incompatible fingerprint keyings;
* **typed config validation** — bad numerics and malformed schedule specs
  raise :class:`ConfigError` at construction / at the CLI flag.
"""

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.data import CTSData
from repro.runtime import (
    CACHE_KEY_VERSION,
    Checkpoint,
    EvalProgress,
    FidelityResult,
    FidelitySchedule,
    FidelityScheduler,
    ProgressVersionError,
    ProxyEvaluator,
    parse_fidelity_schedule,
    proxy_fingerprint,
    resolve_fidelity_schedule,
    resolve_label_policy,
    warm_lineage_fingerprint,
)
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import ProxyConfig, Task, measure_arch_hyper
from repro.utils.validation import ConfigError

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


def _toy_task(t=160, seed=0, name="fid-toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adj = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData(name, values, adj, "test"), p=6, q=3)


def _candidates(count, seed=0):
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    return space.sample_batch(count, np.random.default_rng(seed))


def cheap_eval(arch_hyper, task, config):
    """Deterministic instant eval keyed by the full fingerprint (picklable)."""
    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


# ----------------------------------------------------------------------
# Schedule grammar and ladder math
# ----------------------------------------------------------------------
class TestSchedule:
    def test_parse_roundtrip(self):
        schedule = parse_fidelity_schedule("3:3:1")
        assert schedule == FidelitySchedule(eta=3, rungs=3, min_epochs=1)
        assert schedule.spec() == "3:3:1"

    @pytest.mark.parametrize(
        "spec", ["", "3:3", "3:3:1:9", "a:b:c", "3::1", "1.5:3:1"]
    )
    def test_malformed_specs_raise_typed(self, spec):
        with pytest.raises(ConfigError):
            parse_fidelity_schedule(spec)

    @pytest.mark.parametrize(
        "kwargs", [dict(eta=1), dict(rungs=0), dict(min_epochs=0), dict(eta=True)]
    )
    def test_invalid_fields_raise_typed(self, kwargs):
        with pytest.raises(ConfigError):
            FidelitySchedule(**kwargs)

    def test_rung_epochs_geometric_and_capped(self):
        schedule = FidelitySchedule(eta=3, rungs=3, min_epochs=1)
        assert schedule.rung_epochs(8) == [1, 3, 8]
        assert schedule.rung_epochs(9) == [1, 3, 9]
        # Budgets past full collapse; the ladder always ends at full.
        assert schedule.rung_epochs(2) == [1, 2]
        assert schedule.rung_epochs(1) == [1]

    def test_single_rung_is_flat(self):
        assert FidelitySchedule(eta=2, rungs=1, min_epochs=1).rung_epochs(5) == [5]

    def test_keep_fraction(self):
        schedule = FidelitySchedule(eta=3, rungs=3, min_epochs=1)
        assert schedule.keep(9) == 3
        assert schedule.keep(8) == 3
        assert schedule.keep(2) == 1
        assert schedule.keep(1) == 1  # never culls the last survivor

    def test_resolver_passthrough_env_and_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY_SCHEDULE", raising=False)
        assert resolve_fidelity_schedule(None) is None
        explicit = FidelitySchedule(eta=2, rungs=2, min_epochs=1)
        assert resolve_fidelity_schedule(explicit) is explicit
        assert resolve_fidelity_schedule("2:2:1") == explicit
        monkeypatch.setenv("REPRO_FIDELITY_SCHEDULE", "4:2:1")
        assert resolve_fidelity_schedule(None) == FidelitySchedule(4, 2, 1)

    def test_label_policy_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY_LABEL_POLICY", raising=False)
        assert resolve_label_policy(None) == "survivors"
        assert resolve_label_policy("tagged") == "tagged"
        monkeypatch.setenv("REPRO_FIDELITY_LABEL_POLICY", "tagged")
        assert resolve_label_policy(None) == "tagged"
        with pytest.raises(ConfigError):
            resolve_label_policy("best-effort")


# ----------------------------------------------------------------------
# Typed numeric validation at construction (satellite: ConfigError)
# ----------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0),
            dict(epochs=1.5),
            dict(batch_size=0),
            dict(lr=0.0),
            dict(lr=float("nan")),
            dict(weight_decay=float("inf")),
            dict(seed=-1),
            dict(fidelity_epochs=0),
            dict(epochs=3, fidelity_epochs=4),  # partial budget beyond full
        ],
    )
    def test_proxy_config_rejects_bad_numerics(self, kwargs):
        with pytest.raises(ConfigError):
            ProxyConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0),
            dict(batch_size=-1),
            dict(patience=0),
            dict(lr=-1e-3),
            dict(grad_clip=float("nan")),
        ],
    )
    def test_train_config_rejects_bad_numerics(self, kwargs):
        with pytest.raises(ConfigError):
            TrainConfig(**kwargs)

    def test_config_error_is_value_error(self):
        # Existing `except ValueError` call sites keep working.
        assert issubclass(ConfigError, ValueError)

    def test_full_fidelity_config_is_not_partial(self):
        assert not ProxyConfig(epochs=3, fidelity_epochs=3).is_partial
        assert ProxyConfig(epochs=3, fidelity_epochs=1).is_partial
        assert not ProxyConfig(epochs=3).is_partial


# ----------------------------------------------------------------------
# Fingerprint inertness: the fidelity axis is score material only when
# an actual partial budget is requested
# ----------------------------------------------------------------------
class TestFingerprintInertness:
    def test_defaults_and_full_fidelity_share_fingerprint(self):
        (ah,) = _candidates(1)
        task = _toy_task()
        plain = proxy_fingerprint(ah, task, ProxyConfig(epochs=3))
        # fidelity_epochs == epochs is full fidelity: same measurement.
        assert proxy_fingerprint(
            ah, task, ProxyConfig(epochs=3, fidelity_epochs=3)
        ) == plain
        # warm_dir is score-inert wherever it points.
        assert proxy_fingerprint(
            ah, task, ProxyConfig(epochs=3, warm_dir="/anywhere")
        ) == plain

    def test_partial_fidelity_changes_fingerprint(self):
        (ah,) = _candidates(1)
        task = _toy_task()
        plain = proxy_fingerprint(ah, task, ProxyConfig(epochs=3))
        partial = proxy_fingerprint(
            ah, task, ProxyConfig(epochs=3, fidelity_epochs=1)
        )
        assert partial != plain
        assert partial != proxy_fingerprint(
            ah, task, ProxyConfig(epochs=3, fidelity_epochs=2)
        )

    def test_warm_lineage_strips_fidelity_axis(self):
        (ah,) = _candidates(1)
        task = _toy_task()
        plain = proxy_fingerprint(ah, task, ProxyConfig(epochs=3))
        for config in (
            ProxyConfig(epochs=3, fidelity_epochs=1, warm_dir="/tmp/w"),
            ProxyConfig(epochs=3, fidelity_epochs=2),
            ProxyConfig(epochs=3),
        ):
            assert warm_lineage_fingerprint(ah, task, config) == plain


# ----------------------------------------------------------------------
# Warm-promotion bitwise equivalence (the tentpole guarantee)
# ----------------------------------------------------------------------
class TestWarmPromotionEquivalence:
    def test_partial_then_resume_equals_fresh_full(self, tmp_path):
        """measure_arch_hyper is resumable by fidelity: 1 epoch, then warm-
        continue to 3, bitwise equal to a fresh 3-epoch run."""
        (ah,) = _candidates(1)
        task = _toy_task()
        fresh = measure_arch_hyper(ah, task, ProxyConfig(epochs=3, batch_size=32))
        warm = str(tmp_path / "warm")
        for budget in (1, 2):
            measure_arch_hyper(
                ah,
                task,
                ProxyConfig(
                    epochs=3, batch_size=32, fidelity_epochs=budget, warm_dir=warm
                ),
            )
        resumed = measure_arch_hyper(
            ah, task, ProxyConfig(epochs=3, batch_size=32, warm_dir=warm)
        )
        assert resumed == fresh

    def test_partial_scores_are_deterministic(self, tmp_path):
        (ah,) = _candidates(1)
        task = _toy_task()
        config = ProxyConfig(epochs=3, batch_size=32, fidelity_epochs=1)
        assert measure_arch_hyper(ah, task, config) == measure_arch_hyper(
            ah, task, config
        )

    def _ladder(self, evaluator, tmp_path, label):
        task = _toy_task()
        pairs = [(ah, task) for ah in _candidates(4)]
        config = ProxyConfig(epochs=3, batch_size=32)
        reference = evaluator.evaluate_pairs(pairs, config)
        result = evaluator.evaluate_rungs(
            pairs,
            config,
            schedule=FidelitySchedule(eta=2, rungs=3, min_epochs=1),
            warm_dir=str(tmp_path / f"warm-{label}"),
        )
        return reference, result

    def test_serial_survivors_bitwise_equal_flat(self, tmp_path):
        reference, result = self._ladder(
            ProxyEvaluator(workers=1, cache=None), tmp_path, "serial"
        )
        survivors = [
            i for i, fidelity in enumerate(result.fidelities) if fidelity >= 3
        ]
        assert survivors  # the ladder always promotes someone to full fidelity
        for i in survivors:
            assert result.scores[i] == reference[i]
        # Culled candidates carry their cull-rung fidelity tag.
        assert all(
            fidelity in (1, 2, 3) for fidelity in result.fidelities
        )
        assert result.full_fidelity_mask() == [f >= 3 for f in result.fidelities]
        # Warm accounting: 4@1 + 2@(2-1) + 1@(3-2) = 7 of 12 flat epochs.
        assert result.epochs_spent == 7
        assert result.epochs_saved == 5

    def test_pool_matches_serial_bitwise(self, tmp_path):
        serial_ref, serial = self._ladder(
            ProxyEvaluator(workers=1, cache=None), tmp_path, "s"
        )
        pool_ref, pool = self._ladder(
            ProxyEvaluator(workers=2, cache=None), tmp_path, "p"
        )
        assert pool_ref == serial_ref
        assert pool.scores == serial.scores
        assert pool.fidelities == serial.fidelities
        survivors = [i for i, f in enumerate(pool.fidelities) if f >= 3]
        for i in survivors:
            assert pool.scores[i] == pool_ref[i]

    def test_cold_promotion_equals_fresh_full_too(self):
        """No warm dir: promoted candidates retrain from scratch and still
        land on the fresh full-fidelity score (partial training is a prefix
        of the full run)."""
        evaluator = ProxyEvaluator(workers=1, cache=None)
        task = _toy_task()
        pairs = [(ah, task) for ah in _candidates(3)]
        config = ProxyConfig(epochs=2, batch_size=32)
        reference = evaluator.evaluate_pairs(pairs, config)
        result = evaluator.evaluate_rungs(
            pairs, config, schedule=FidelitySchedule(eta=3, rungs=2, min_epochs=1)
        )
        for i, fidelity in enumerate(result.fidelities):
            if fidelity >= 2:
                assert result.scores[i] == reference[i]


# ----------------------------------------------------------------------
# The inert default: no schedule anywhere, byte-identical behaviour
# ----------------------------------------------------------------------
class TestInertDefault:
    def test_evaluate_rungs_without_schedule_is_evaluate_pairs(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY_SCHEDULE", raising=False)
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        task = _toy_task()
        pairs = [(ah, task) for ah in _candidates(3)]
        config = ProxyConfig(epochs=2)
        flat = evaluator.evaluate_pairs(pairs, config)
        result = evaluator.evaluate_rungs(pairs, config)
        assert isinstance(result, FidelityResult)
        assert result.scores == flat
        assert result.fidelities == [2, 2, 2]
        assert result.rungs == []  # no ladder ran
        assert result.epochs_spent == 0 and result.full_fidelity_mask() == [
            True,
            True,
            True,
        ]

    def test_rung_metrics_and_reports(self):
        from repro.obs import MetricsRegistry, metrics_scope

        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        task = _toy_task()
        pairs = [(ah, task) for ah in _candidates(4)]
        config = ProxyConfig(epochs=4)
        with metrics_scope(MetricsRegistry()) as registry:
            result = evaluator.evaluate_rungs(
                pairs, config, schedule=FidelitySchedule(eta=2, rungs=2, min_epochs=1)
            )
            snapshot = registry.snapshot()
        assert [r.rung for r in result.rungs] == [0, 1]
        assert result.rungs[0].candidates == 4
        assert result.rungs[0].promoted == 2
        assert result.rungs[0].culled == 2
        assert result.rungs[1].promoted == 0  # final rung promotes nowhere
        assert snapshot["fidelity.rungs"]["value"] == 2
        assert snapshot["fidelity.evals"]["value"] == 6
        assert snapshot["fidelity.epochs_spent"]["value"] == result.epochs_spent
        assert snapshot["fidelity.culled"]["value"] == 2
        assert snapshot["fidelity.epochs_saved"]["value"] == result.epochs_saved


# ----------------------------------------------------------------------
# Checkpointed mid-rung resume + progress version skew
# ----------------------------------------------------------------------
class TestSchedulerResume:
    def test_mid_rung_interrupt_resumes_bitwise(self, tmp_path):
        task = _toy_task()
        pairs = [(ah, task) for ah in _candidates(4)]
        config = ProxyConfig(epochs=4)
        schedule = FidelitySchedule(eta=2, rungs=2, min_epochs=1)

        clean = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        expected = clean.evaluate_rungs(pairs, config, schedule=schedule)

        calls = {"n": 0}

        def flaky_eval(arch_hyper, task_, config_):
            calls["n"] += 1
            if calls["n"] == 3:  # dies mid-rung-0
                raise RuntimeError("simulated crash")
            return cheap_eval(arch_hyper, task_, config_)

        path = tmp_path / "collect.ckpt"
        flaky = ProxyEvaluator(workers=1, cache=None, eval_fn=flaky_eval)
        with pytest.raises(RuntimeError, match="simulated crash"):
            flaky.evaluate_rungs(
                pairs,
                config,
                schedule=schedule,
                progress=EvalProgress(Checkpoint(path, kind="eval-progress")),
            )

        resumed_calls = {"n": 0}

        def counting_eval(arch_hyper, task_, config_):
            resumed_calls["n"] += 1
            return cheap_eval(arch_hyper, task_, config_)

        resumer = ProxyEvaluator(workers=1, cache=None, eval_fn=counting_eval)
        result = resumer.evaluate_rungs(
            pairs,
            config,
            schedule=schedule,
            progress=EvalProgress(Checkpoint(path, kind="eval-progress")),
        )
        assert result.scores == expected.scores
        assert result.fidelities == expected.fidelities
        # The two rung-0 scores flushed before the crash replay from the
        # progress file; only the remaining evaluations run live.
        assert resumed_calls["n"] == 6 - 2

    def test_progress_version_skew_refuses(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "progress.ckpt", kind="eval-progress")
        checkpoint.save({"scores": {"ab": 1.0}, "key_version": CACHE_KEY_VERSION - 1})
        with pytest.raises(ProgressVersionError, match="refusing to resume"):
            EvalProgress(checkpoint)

    def test_progress_without_version_refuses(self, tmp_path):
        # Files from before versions were recorded cannot prove their keying.
        checkpoint = Checkpoint(tmp_path / "legacy.ckpt", kind="eval-progress")
        checkpoint.save({"scores": {"ab": 1.0}})
        with pytest.raises(ProgressVersionError):
            EvalProgress(checkpoint)

    def test_progress_current_version_loads(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "ok.ckpt", kind="eval-progress")
        checkpoint.save({"scores": {"ab": 1.5}, "key_version": CACHE_KEY_VERSION})
        assert EvalProgress(checkpoint).known("ab") == 1.5


# ----------------------------------------------------------------------
# Label eligibility masks in pairing (survivors policy plumbing)
# ----------------------------------------------------------------------
class TestPairingEligibility:
    def test_none_and_all_true_masks_are_rng_inert(self):
        from repro.comparator.pairing import dynamic_pairs

        scores = np.array([0.5, 0.3, 0.9, 0.7])
        unmasked = dynamic_pairs(scores, np.random.default_rng(7), 16)
        masked = dynamic_pairs(
            scores, np.random.default_rng(7), 16, eligible=np.ones(4, dtype=bool)
        )
        assert [(p.index_a, p.index_b, p.label) for p in unmasked] == [
            (p.index_a, p.index_b, p.label) for p in masked
        ]

    def test_ineligible_candidates_never_pair(self):
        from repro.comparator.pairing import dynamic_pairs

        scores = np.array([0.5, 0.3, 0.9, 0.7])
        eligible = np.array([True, False, True, True])
        pairs = dynamic_pairs(scores, np.random.default_rng(0), 32, eligible=eligible)
        assert pairs
        for pair in pairs:
            assert pair.index_a != 1 and pair.index_b != 1

    def test_too_few_eligible_is_typed_failure(self):
        from repro.comparator.pairing import dynamic_pairs, has_comparable_pair

        scores = np.array([0.5, 0.3, 0.9])
        eligible = np.array([True, False, False])
        assert not has_comparable_pair(scores, eligible)
        with pytest.raises(ValueError, match="no comparable pair"):
            dynamic_pairs(scores, np.random.default_rng(0), 8, eligible=eligible)

    def test_comparable_pair_indices_filters_mask(self):
        from repro.comparator.pairing import comparable_pair_indices

        scores = np.array([0.5, 0.3, 0.9, 0.7])
        eligible = np.array([True, True, False, True])
        index_a, index_b = comparable_pair_indices(scores, eligible)
        assert len(index_a) > 0
        assert 2 not in set(index_a) | set(index_b)


# ----------------------------------------------------------------------
# Search loops: fidelity-tagged collection feeding the comparator
# ----------------------------------------------------------------------
class TestAutoCTSPlusFidelity:
    def _search(self, **config_kwargs):
        from repro.search import AutoCTSPlusConfig, AutoCTSPlusSearch

        space = JointSearchSpace(hyper_space=TINY_HYPER)
        config = AutoCTSPlusConfig(
            n_measured_samples=6,
            proxy=ProxyConfig(epochs=4),
            **config_kwargs,
        )
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        return AutoCTSPlusSearch(space, config, evaluator=evaluator)

    def test_flat_collect_leaves_no_mask(self):
        search = self._search()
        measured = search.collect_samples(_toy_task())
        assert len(measured) == 6
        assert search._label_eligible is None

    def test_scheduled_collect_masks_culled_candidates(self):
        search = self._search(fidelity_schedule="2:2:1")
        measured = search.collect_samples(_toy_task())
        assert len(measured) == 6
        mask = search._label_eligible
        assert mask is not None and mask.sum() == 3  # keep(6) with eta=2
        # Masked (culled) scores are partial-fidelity measurements.
        flat = self._search().collect_samples(_toy_task())
        for i, eligible in enumerate(mask):
            if eligible:
                assert measured[i][1] == flat[i][1]

    def test_tagged_policy_uses_every_score(self):
        search = self._search(
            fidelity_schedule="2:2:1", fidelity_label_policy="tagged"
        )
        search.collect_samples(_toy_task())
        assert search._label_eligible is None


# ----------------------------------------------------------------------
# Service protocol: the schedule is score material
# ----------------------------------------------------------------------
class TestServiceProtocol:
    def test_score_material_has_no_fidelity_keys_by_default(self):
        from repro.service.protocol import RuntimeOverrides

        material = RuntimeOverrides().score_material()
        assert "fidelity_schedule" not in material
        assert "fidelity_label_policy" not in material

    def test_score_material_canonicalizes_schedule(self):
        from repro.service.protocol import RuntimeOverrides

        material = RuntimeOverrides(fidelity_schedule=" 3:3:1 ").score_material()
        assert material["fidelity_schedule"] == "3:3:1"
        assert material["fidelity_label_policy"] == "survivors"

    def test_parse_runtime_accepts_and_rejects(self):
        from repro.service.protocol import ProtocolError, parse_runtime

        overrides = parse_runtime(
            {"fidelity_schedule": "3:3:1", "fidelity_label_policy": "tagged"}
        )
        assert overrides.fidelity_schedule == "3:3:1"
        assert overrides.fidelity_label_policy == "tagged"
        with pytest.raises(ProtocolError, match="fidelity schedule"):
            parse_runtime({"fidelity_schedule": "bogus"})
        with pytest.raises(ProtocolError, match="fidelity_label_policy"):
            parse_runtime({"fidelity_label_policy": "whatever"})

    def test_parse_runtime_rejects_bad_proxy_numerics_at_submit(self):
        from repro.service.protocol import ProtocolError, parse_runtime

        with pytest.raises(ProtocolError, match="runtime"):
            parse_runtime({"proxy_epochs": 0})


# ----------------------------------------------------------------------
# CLI flag parsing (satellite: validation covers the flags too)
# ----------------------------------------------------------------------
class TestCLI:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "search",
                "SZ-TAXI",
                "--fidelity-schedule",
                "3:3:1",
                "--fidelity-label-policy",
                "tagged",
                "--warm-dir",
                "/tmp/warm",
            ]
        )
        assert args.fidelity_schedule == "3:3:1"
        assert args.fidelity_label_policy == "tagged"
        assert args.warm_dir == "/tmp/warm"

    @pytest.mark.parametrize("command", ["search", "autocts"])
    def test_malformed_schedule_exits_cleanly(self, command, capsys):
        from repro.cli import main

        code = main([command, "SZ-TAXI", "--fidelity-schedule", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "fidelity schedule" in err

    def test_invalid_schedule_numerics_exit_cleanly(self, capsys):
        from repro.cli import main

        code = main(["search", "SZ-TAXI", "--fidelity-schedule", "1:3:1"])
        assert code == 2
        assert "eta" in capsys.readouterr().err
