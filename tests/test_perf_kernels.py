"""Tests for the optimized kernel paths: im2col convolutions, fused
elementwise ops, and the buffer pool (see docs/performance.md).

Three kinds of guarantees:

* every new fused / im2col / pooled op has a correct backward pass
  (central-difference gradient checks in float64),
* the im2col kernels agree with the reference per-tap loop kernels to
  float tolerance, and the fused chains are *bitwise* identical to the
  unfused chains they replace,
* pooled training is bitwise-identical to pool-disabled training across
  shapes and seeds (the property that lets ``ProxyConfig.buffer_pool``
  stay outside the eval-cache fingerprint).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, absolute, broadcast_to, check_gradients, mean, relu
from repro.autodiff.fused import (
    REFERENCE_KERNELS_ENV,
    fused_kernels_enabled,
    gated_tanh_sigmoid,
    mean_absolute_error,
    reference_kernels,
)
from repro.autodiff.pool import POOL_ENV, BufferPool, pooling_allowed
from repro.core import TrainConfig, build_forecaster, train_forecaster
from repro.data import CTSData
from repro.nn.conv import (
    CausalConv2d,
    Conv1d,
    PointwiseConv2d,
    channel_mix,
    conv1d,
    conv2d_1xk,
    im2col_conv,
)
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task

RNG = np.random.default_rng(23)


def _rand(*shape):
    return RNG.standard_normal(shape).astype(np.float64)


class TestIm2colGradients:
    """Central-difference checks for the single-gemm conv kernels."""

    @pytest.mark.parametrize("kernel,dilation", [(1, 1), (2, 1), (3, 2), (2, 4)])
    def test_conv2d_1xk_causal(self, kernel, dilation):
        check_gradients(
            lambda x, w: conv2d_1xk(x, w, dilation=dilation, causal=True),
            [_rand(2, 3, 4, 10), _rand(5, 3, kernel)],
        )

    def test_conv2d_1xk_non_causal(self):
        check_gradients(
            lambda x, w: conv2d_1xk(x, w, dilation=1, causal=False),
            [_rand(2, 3, 4, 8), _rand(5, 3, 3)],
        )

    def test_conv2d_1xk_bias(self):
        check_gradients(
            lambda x, w, b: conv2d_1xk(x, w, b),
            [_rand(2, 3, 4, 6), _rand(5, 3, 2), _rand(5)],
        )

    @pytest.mark.parametrize("padding", ["same", "causal"])
    @pytest.mark.parametrize("kernel,dilation", [(3, 1), (2, 2), (4, 1)])
    def test_conv1d(self, padding, kernel, dilation):
        check_gradients(
            lambda x, w: conv1d(x, w, dilation=dilation, padding=padding),
            [_rand(2, 3, 12), _rand(4, 3, kernel)],
        )

    def test_channel_mix(self):
        check_gradients(channel_mix, [_rand(2, 3, 4, 6), _rand(5, 3)])

    def test_im2col_conv_asymmetric_padding(self):
        check_gradients(
            lambda x, w: im2col_conv(x, w, dilation=1, left=2, right=1),
            [_rand(2, 3, 9), _rand(4, 3, 3)],
        )

    def test_im2col_conv_no_weight_grad(self):
        x = Tensor(_rand(2, 3, 4, 8), requires_grad=True)
        w = Tensor(_rand(5, 3, 2), requires_grad=False)
        out = im2col_conv(x, w, left=1)
        out.sum().backward()
        assert x.grad is not None and w.grad is None


class TestIm2colMatchesReference:
    """The im2col path reproduces the per-tap reference loop numerically."""

    def _compare(self, fn, inputs, monkeypatch):
        fast_in = [Tensor(x.copy(), requires_grad=True) for x in inputs]
        fast = fn(*fast_in)
        fast.sum().backward()
        monkeypatch.setenv(REFERENCE_KERNELS_ENV, "1")
        assert reference_kernels()
        ref_in = [Tensor(x.copy(), requires_grad=True) for x in inputs]
        ref = fn(*ref_in)
        ref.sum().backward()
        np.testing.assert_allclose(fast.data, ref.data, rtol=1e-10, atol=1e-12)
        for fast_t, ref_t in zip(fast_in, ref_in):
            np.testing.assert_allclose(
                fast_t.grad, ref_t.grad, rtol=1e-10, atol=1e-12
            )

    @pytest.mark.parametrize("kernel,dilation", [(2, 1), (3, 2)])
    def test_conv2d_1xk(self, kernel, dilation, monkeypatch):
        self._compare(
            lambda x, w, b: conv2d_1xk(x, w, b, dilation=dilation),
            [_rand(2, 3, 5, 12), _rand(4, 3, kernel), _rand(4)],
            monkeypatch,
        )

    @pytest.mark.parametrize("padding", ["same", "causal"])
    def test_conv1d(self, padding, monkeypatch):
        self._compare(
            lambda x, w, b: conv1d(x, w, b, dilation=2, padding=padding),
            [_rand(3, 4, 16), _rand(5, 4, 3), _rand(5)],
            monkeypatch,
        )

    def test_pointwise(self, monkeypatch):
        layer = PointwiseConv2d(3, 5, rng=np.random.default_rng(7))
        x = _rand(2, 3, 4, 6).astype(np.float32)
        fast = layer(Tensor(x)).numpy()
        monkeypatch.setenv(REFERENCE_KERNELS_ENV, "1")
        ref = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(fast, ref, rtol=1e-6, atol=1e-7)

    def test_layers_use_reference_path_under_env(self, monkeypatch):
        """$REPRO_REFERENCE_KERNELS swaps the layer-level kernel too."""
        monkeypatch.setenv(REFERENCE_KERNELS_ENV, "1")
        layer = CausalConv2d(3, 4, kernel_size=2, rng=np.random.default_rng(3))
        out = layer(Tensor(_rand(2, 3, 4, 8)))
        assert out.shape == (2, 4, 4, 8)
        conv = Conv1d(3, 4, kernel_size=3, rng=np.random.default_rng(3))
        assert conv(Tensor(_rand(2, 3, 10))).shape == (2, 4, 10)


class TestFusedKernels:
    """Fused chains are bitwise-identical to the unfused op compositions."""

    def test_gated_tanh_sigmoid_bitwise(self):
        f_data, g_data = _rand(2, 4, 3, 6), _rand(2, 4, 3, 6)
        f1 = Tensor(f_data.copy(), requires_grad=True)
        g1 = Tensor(g_data.copy(), requires_grad=True)
        fused = gated_tanh_sigmoid(f1, g1)
        fused.sum().backward()
        f2 = Tensor(f_data.copy(), requires_grad=True)
        g2 = Tensor(g_data.copy(), requires_grad=True)
        chain = f2.tanh() * g2.sigmoid()
        chain.sum().backward()
        assert np.array_equal(fused.data, chain.data)
        assert np.array_equal(f1.grad, f2.grad)
        assert np.array_equal(g1.grad, g2.grad)

    def test_gated_tanh_sigmoid_gradients(self):
        check_gradients(gated_tanh_sigmoid, [_rand(2, 3, 4, 5), _rand(2, 3, 4, 5)])

    def test_gated_tanh_sigmoid_extreme_logits(self):
        """The fused sigmoid keeps the stable two-sided formulation."""
        g = Tensor(np.array([[-500.0, 500.0, 0.0]]), requires_grad=True)
        f = Tensor(np.ones((1, 3)), requires_grad=True)
        out = gated_tanh_sigmoid(f, g)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(g.grad))

    def test_fused_mae_bitwise(self):
        p_data, t_data = _rand(3, 4, 5), _rand(3, 4, 5)
        p1 = Tensor(p_data.copy(), requires_grad=True)
        t1 = Tensor(t_data.copy(), requires_grad=True)
        fused = mean_absolute_error(p1, t1)
        fused.backward()
        p2 = Tensor(p_data.copy(), requires_grad=True)
        t2 = Tensor(t_data.copy(), requires_grad=True)
        chain = mean(absolute(p2 - t2))
        chain.backward()
        assert np.array_equal(fused.data, chain.data)
        assert np.array_equal(p1.grad, p2.grad)
        assert np.array_equal(t1.grad, t2.grad)

    def test_fused_mae_gradients(self):
        check_gradients(mean_absolute_error, [_rand(2, 5, 3), _rand(2, 5, 3)])

    def test_fused_mae_constant_target(self):
        p = Tensor(_rand(4, 3), requires_grad=True)
        loss = mean_absolute_error(p, _rand(4, 3))
        loss.backward()
        assert p.grad.shape == (4, 3)

    def test_fusion_disabled_by_reference_env(self, monkeypatch):
        monkeypatch.setenv(REFERENCE_KERNELS_ENV, "1")
        assert not fused_kernels_enabled()

    def test_fusion_disabled_under_anomaly_mode(self):
        from repro.autodiff.anomaly import detect_anomaly

        assert fused_kernels_enabled()
        with detect_anomaly():
            assert not fused_kernels_enabled()


class TestLazyBroadcast:
    def test_broadcast_to_is_zero_copy(self):
        x = Tensor(_rand(1, 4), requires_grad=True)
        out = broadcast_to(x, (3, 4))
        assert np.shares_memory(out.data, x.data)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 4), 3.0))

    def test_broadcast_to_gradients(self):
        check_gradients(lambda x: broadcast_to(x, (5, 2, 3)), [_rand(2, 3)])


class TestBufferPool:
    def test_env_kill_switch(self, monkeypatch):
        assert pooling_allowed()
        monkeypatch.setenv(POOL_ENV, "0")
        assert not pooling_allowed()

    def test_cross_step_reuse(self):
        pool = BufferPool()
        with pool.step():
            first = pool.take((8, 8), np.float64)
        assert pool.stats()["misses"] == 1
        with pool.step():
            second = pool.take((8, 8), np.float64)
        assert second is first
        assert pool.stats()["hits"] == 1

    def test_no_same_step_reuse(self):
        """A buffer handed out this step is never recycled this step."""
        pool = BufferPool()
        with pool.step():
            a = pool.take((4,), np.float64)
            b = pool.take((4,), np.float64)
        assert a is not b

    def test_pooled_ops_bitwise_match_unpooled(self):
        """Repeated pooled forward/backward (with buffer recycling across
        generations) matches pool-off execution bitwise, including relu's
        fill+copyto formulation on negative zeros."""
        x_data = _rand(4, 6)
        x_data[0, 0] = -0.0
        y_data = _rand(4, 6)

        def run(pooled):
            results = []
            pool = BufferPool() if pooled else None
            for _ in range(3):  # multiple generations => real buffer reuse
                ctx = pool.step() if pool else None
                if ctx:
                    ctx.__enter__()
                try:
                    x = Tensor(x_data.copy(), requires_grad=True)
                    y = Tensor(y_data.copy(), requires_grad=True)
                    out = mean(absolute(relu(x * y) + x.exp() / (y * y + 1.0)))
                    out.backward()
                    results.append((out.data.copy(), x.grad.copy(), y.grad.copy()))
                finally:
                    if ctx:
                        ctx.__exit__(None, None, None)
            return results

        for pooled_result, plain_result in zip(run(True), run(False)):
            for a, b in zip(pooled_result, plain_result):
                assert np.array_equal(a, b)

    def test_pool_scoped_to_step_context(self):
        from repro.autodiff.pool import active_pool

        pool = BufferPool()
        assert active_pool() is None
        with pool.step():
            assert active_pool() is pool
        assert active_pool() is None


def _toy_task(t=64, n=3, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    values = np.stack(
        [
            np.sin(2 * np.pi * steps / 12 + k) + 0.05 * rng.standard_normal(t)
            for k in range(n)
        ]
    )
    return Task(
        CTSData(
            "toy",
            values[..., None].astype(np.float32),
            np.ones((n, n), np.float32),
            "test",
        ),
        p=6,
        q=2,
        max_train_windows=32,
    )


def _train_state(hidden_dim, seed, buffer_pool):
    task = _toy_task(seed=seed)
    space = JointSearchSpace(
        hyper_space=HyperSpace(
            num_blocks=(1,),
            num_nodes=(3,),
            hidden_dims=(hidden_dim,),
            output_dims=(hidden_dim,),
            output_modes=(0,),
            dropout=(0,),
        )
    )
    arch_hyper = space.sample(np.random.default_rng(seed))
    model = build_forecaster(arch_hyper, task.data, task.horizon, seed=seed)
    train_forecaster(
        model,
        task.prepared.train,
        task.prepared.val,
        TrainConfig(
            epochs=2, batch_size=16, patience=2, seed=seed, buffer_pool=buffer_pool
        ),
    )
    return model.state_dict()


class TestPooledTrainingBitwise:
    """The property that keeps buffer_pool out of eval-cache fingerprints."""

    @settings(max_examples=4, deadline=None)
    @given(
        hidden_dim=st.sampled_from([4, 8]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_pooled_training_bitwise_identical(self, hidden_dim, seed):
        pooled = _train_state(hidden_dim, seed, buffer_pool=True)
        plain = _train_state(hidden_dim, seed, buffer_pool=False)
        assert pooled.keys() == plain.keys()
        for name in pooled:
            assert np.array_equal(pooled[name], plain[name]), name
