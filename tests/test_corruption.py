"""Corruption injection, imputation policies, and the mask-aware data path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CTSData, get_dataset
from repro.data.corruption import (
    CORRUPTION_PROFILES,
    CorruptionResult,
    apply_profile,
    corrupt_dataset,
    inject_block_missing,
    inject_irregular_sampling,
    inject_level_shift,
    inject_point_anomalies,
    inject_sensor_outage,
    list_profiles,
)
from repro.data.scalers import StandardScaler
from repro.data.transforms import (
    IMPUTATION_POLICIES,
    impute_missing,
    impute_non_finite,
)
from repro.data.windows import iterate_batches, iterate_masked_batches, make_windows, split_windows

RNG = np.random.default_rng(7)


def _values(n=4, t=60, f=2):
    return RNG.normal(10.0, 3.0, size=(n, t, f))


INJECTORS = [
    inject_sensor_outage,
    inject_block_missing,
    inject_point_anomalies,
    inject_level_shift,
    inject_irregular_sampling,
]


class TestInjectors:
    @pytest.mark.parametrize("injector", INJECTORS)
    def test_mask_contract(self, injector):
        """mask=True entries equal clean; every non-finite entry is masked out."""
        x = _values()
        result = injector(x, np.random.default_rng(0))
        assert isinstance(result, CorruptionResult)
        assert result.values.shape == x.shape
        np.testing.assert_array_equal(result.values[result.mask], x[result.mask])
        assert np.isfinite(result.values[result.mask]).all()
        bad = ~np.isfinite(result.values)
        assert not (bad & result.mask).any()

    @pytest.mark.parametrize("injector", INJECTORS)
    def test_clean_reference_untouched(self, injector):
        x = _values()
        before = x.copy()
        result = injector(x, np.random.default_rng(1))
        np.testing.assert_array_equal(x, before)
        np.testing.assert_array_equal(result.clean, before)

    @pytest.mark.parametrize("injector", INJECTORS)
    def test_actually_corrupts(self, injector):
        result = injector(_values(), np.random.default_rng(2))
        assert result.corrupted_fraction > 0

    def test_anomalies_stay_finite_but_masked(self):
        result = inject_point_anomalies(_values(), np.random.default_rng(3), rate=0.1)
        assert np.isfinite(result.values).all()
        hit = ~result.mask
        assert hit.any()
        assert (result.values[hit] != result.clean[hit]).all()

    def test_level_shift_masks_post_changepoint(self):
        result = inject_level_shift(_values(), np.random.default_rng(4))
        assert np.isfinite(result.values).all()
        assert result.corrupted_fraction > 0

    def test_block_missing_handles_short_series(self):
        # block_length > t must not produce a degenerate rng.integers range
        x = _values(t=3)
        result = inject_block_missing(x, np.random.default_rng(5), rate=0.5, block_length=8)
        assert result.values.shape == x.shape

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            inject_block_missing(np.zeros((5, 5)), np.random.default_rng(0))


class TestProfiles:
    def test_registry_contents(self):
        names = list_profiles()
        for required in (
            "block_missing",
            "sensor_outage",
            "point_anomalies",
            "level_shift",
            "irregular_sampling",
            "mixed",
        ):
            assert required in names

    @given(
        profile=st.sampled_from(sorted(CORRUPTION_PROFILES)),
        severity=st.floats(0.05, 1.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_profiles_deterministic_under_derive_rng(self, profile, severity, seed):
        """Same (profile, severity, seed, key) -> bitwise-identical dirt."""
        x = np.random.default_rng(9).normal(size=(3, 40, 2))
        a = apply_profile(profile, x, severity=severity, seed=seed, key="k")
        b = apply_profile(profile, x, severity=severity, seed=seed, key="k")
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.mask, b.mask)

    @given(
        profile=st.sampled_from(sorted(CORRUPTION_PROFILES)),
        severity=st.floats(0.1, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_profiles_mask_consistent(self, profile, severity):
        """Observed entries equal clean; non-finite entries are all masked."""
        x = np.random.default_rng(11).normal(size=(3, 40, 2))
        result = apply_profile(profile, x, severity=severity, seed=1, key="k")
        np.testing.assert_array_equal(result.values[result.mask], x[result.mask])
        assert not (~np.isfinite(result.values) & result.mask).any()

    def test_different_keys_differ(self):
        x = _values()
        a = apply_profile("block_missing", x, severity=0.4, seed=0, key="a")
        b = apply_profile("block_missing", x, severity=0.4, seed=0, key="b")
        assert not np.array_equal(a.mask, b.mask)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            apply_profile("nope", _values())

    def test_severity_out_of_range_raises(self):
        with pytest.raises(ValueError):
            apply_profile("block_missing", _values(), severity=0.0)
        with pytest.raises(ValueError):
            apply_profile("block_missing", _values(), severity=1.5)


class TestImputeMissing:
    def _holed(self):
        x = _values()
        result = inject_block_missing(x, np.random.default_rng(0), rate=0.3)
        return x, result

    @pytest.mark.parametrize("policy", IMPUTATION_POLICIES)
    def test_fills_are_finite_and_observed_untouched(self, policy):
        _, result = self._holed()
        filled = impute_missing(result.values, result.mask, policy=policy)
        assert np.isfinite(filled).all()
        np.testing.assert_array_equal(filled[result.mask], result.values[result.mask])

    @pytest.mark.parametrize("policy", IMPUTATION_POLICIES)
    def test_clean_array_identity(self, policy):
        x = _values()
        assert impute_missing(x, policy=policy) is x

    @pytest.mark.parametrize("policy", IMPUTATION_POLICIES)
    def test_all_missing_slice_falls_back_to_zero(self, policy):
        x = _values(n=2, t=10)
        x[0, :, 0] = np.nan
        filled = impute_missing(x, policy=policy)
        np.testing.assert_array_equal(filled[0, :, 0], 0.0)

    def test_mean_policy_uses_observed_mean(self):
        x = np.array([[[1.0], [np.nan], [3.0]]])
        filled = impute_missing(x, policy="mean")
        assert filled[0, 1, 0] == pytest.approx(2.0)

    def test_mask_excludes_untrusted_anchors(self):
        # entry 2 is finite but untrusted; the mean must ignore it
        x = np.array([[[1.0], [np.nan], [100.0], [3.0]]])
        mask = np.array([[[True], [False], [False], [True]]])
        filled = impute_missing(x, mask, policy="mean")
        assert filled[0, 1, 0] == pytest.approx(2.0)
        assert filled[0, 2, 0] == 100.0  # untrusted-but-finite kept as-is

    def test_ffill_carries_forward_then_backward(self):
        x = np.array([[[np.nan], [2.0], [np.nan], [5.0], [np.nan]]])
        filled = impute_missing(x, policy="ffill")
        np.testing.assert_allclose(filled[0, :, 0], [2.0, 2.0, 2.0, 5.0, 5.0])

    def test_linear_interpolates_between_anchors(self):
        x = np.array([[[0.0], [np.nan], [np.nan], [3.0]]])
        filled = impute_missing(x, policy="linear")
        np.testing.assert_allclose(filled[0, :, 0], [0.0, 1.0, 2.0, 3.0])

    def test_preserves_float32(self):
        x = _values().astype(np.float32)
        x[0, 0, 0] = np.nan
        assert impute_missing(x, policy="mean").dtype == np.float32

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            impute_missing(_values(), policy="cubic")


class TestImputeNonFinite:
    def test_clean_array_is_returned_bit_identical(self):
        x = _values()
        assert impute_non_finite(x) is x

    def test_all_nan_slice_falls_back_to_zero(self):
        x = _values(n=2, t=8)
        x[1, :, 1] = np.nan
        out = impute_non_finite(x)
        np.testing.assert_array_equal(out[1, :, 1], 0.0)
        assert np.isfinite(out).all()

    def test_fills_with_finite_mean(self):
        x = np.array([[[2.0], [np.nan], [4.0]]])
        out = impute_non_finite(x)
        assert out[0, 1, 0] == pytest.approx(3.0)

    def test_inf_treated_as_missing(self):
        x = np.array([[[2.0], [np.inf], [4.0]]])
        out = impute_non_finite(x)
        assert out[0, 1, 0] == pytest.approx(3.0)

    def test_finite_entries_untouched(self):
        x = _values()
        x[0, 3, 0] = np.nan
        out = impute_non_finite(x)
        keep = np.isfinite(x)
        np.testing.assert_array_equal(out[keep], x[keep])


def _masked_dataset(n=4, t=60):
    values = np.abs(RNG.normal(10, 2, size=(n, t, 1))).astype(np.float32)
    adjacency = np.ones((n, n), np.float32)
    result = inject_block_missing(values, np.random.default_rng(0), rate=0.3)
    filled = impute_missing(result.values, result.mask).astype(np.float32)
    return CTSData("dirty", filled, adjacency, "test", mask=result.mask)


class TestCTSDataMask:
    def test_mask_shape_validated(self):
        values = np.ones((2, 10, 1), np.float32)
        with pytest.raises(ValueError):
            CTSData("bad", values, np.ones((2, 2), np.float32), "test",
                    mask=np.ones((2, 9, 1), dtype=bool))

    def test_mask_dtype_validated(self):
        values = np.ones((2, 10, 1), np.float32)
        with pytest.raises(ValueError):
            CTSData("bad", values, np.ones((2, 2), np.float32), "test",
                    mask=np.ones((2, 10, 1), dtype=np.float32))

    def test_mask_survives_slicing(self):
        data = _masked_dataset()
        sliced = data.slice_time(5, 40)
        np.testing.assert_array_equal(sliced.mask, data.mask[:, 5:40])
        picked = data.select_nodes(np.array([0, 2]))
        np.testing.assert_array_equal(picked.mask, data.mask[[0, 2]])

    def test_clean_data_has_no_mask(self):
        data = get_dataset("PEMS08", seed=0)
        assert data.mask is None


class TestCorruptDataset:
    def test_registry_dirty_variant(self):
        dirty = get_dataset("PEMS08-missing", seed=0)
        assert dirty.mask is not None
        assert np.isfinite(dirty.values).all()
        assert (~dirty.mask).mean() >= 0.2  # the e2e missingness floor

    def test_deterministic_across_calls(self):
        a = get_dataset("PEMS08-missing", seed=0)
        b = get_dataset("PEMS08-missing", seed=0)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.mask, b.mask)

    def test_values_finite_and_observed_match_clean(self):
        clean = get_dataset("SZ-TAXI", seed=0)
        dirty = corrupt_dataset(clean, "block_missing", severity=0.25, seed=0)
        assert np.isfinite(dirty.values).all()
        np.testing.assert_array_equal(dirty.values[dirty.mask], clean.values[dirty.mask])
        assert dirty.name == "SZ-TAXI~block_missing@0.25"

    def test_existing_mask_intersected(self):
        base = _masked_dataset()
        dirty = corrupt_dataset(base, "irregular_sampling", severity=0.3, seed=0)
        assert (~dirty.mask).sum() >= (~base.mask).sum()
        assert not (dirty.mask & ~base.mask).any()


class TestMaskedScaler:
    def test_maskless_path_unchanged(self):
        x = _values()
        a = StandardScaler().fit(x)
        b = StandardScaler().fit(x, mask=None)
        np.testing.assert_array_equal(a.mean_, b.mean_)
        np.testing.assert_array_equal(a.std_, b.std_)

    def test_masked_stats_ignore_fill_values(self):
        x = _values()
        mask = np.ones(x.shape, dtype=bool)
        poisoned = x.copy()
        poisoned[0, :10] = 1e6  # imputed garbage
        mask[0, :10] = False
        clean_stats = StandardScaler().fit(x[:, :, :])
        masked_stats = StandardScaler().fit(poisoned, mask=mask)
        # masked stats must be close to stats over the trusted entries only
        trusted_mean = x.reshape(-1, x.shape[-1])[mask.reshape(-1, x.shape[-1])[:, 0]].mean(axis=0)
        np.testing.assert_allclose(masked_stats.mean_, trusted_mean, rtol=1e-6)
        assert abs(masked_stats.mean_[0] - clean_stats.mean_[0]) < 1.0

    def test_all_masked_feature_falls_back(self):
        x = _values()
        mask = np.zeros(x.shape, dtype=bool)
        scaler = StandardScaler().fit(x, mask=mask)
        np.testing.assert_array_equal(scaler.mean_, 0.0)
        np.testing.assert_array_equal(scaler.std_, 1.0)

    def test_mask_shape_mismatch_raises(self):
        x = _values()
        with pytest.raises(ValueError):
            StandardScaler().fit(x, mask=np.ones((1, 1, 1), dtype=bool))


class TestMaskedWindows:
    def test_windows_carry_masks(self):
        data = _masked_dataset()
        windows = make_windows(data, p=6, q=6)
        assert windows.x_mask is not None and windows.y_mask is not None
        assert windows.x_mask.shape == windows.x.shape
        assert windows.y_mask.shape == windows.y.shape
        train, val, test = split_windows(windows, (6, 2, 2))
        assert train.y_mask is not None
        assert len(train.y_mask) == len(train.y)

    def test_clean_windows_have_no_masks(self):
        data = get_dataset("SZ-TAXI", seed=0)
        windows = make_windows(data, p=6, q=6)
        assert windows.x_mask is None and windows.y_mask is None

    def test_masked_batches_match_plain_batches(self):
        """Same order and RNG consumption as iterate_batches."""
        data = _masked_dataset()
        windows = make_windows(data, p=6, q=6)
        plain = list(iterate_batches(windows, 16, np.random.default_rng(3)))
        masked = list(iterate_masked_batches(windows, 16, np.random.default_rng(3)))
        assert len(plain) == len(masked)
        for (x, y), (mx, my, my_mask) in zip(plain, masked):
            np.testing.assert_array_equal(x, mx)
            np.testing.assert_array_equal(y, my)
            assert my_mask.shape == my.shape

    def test_masked_batches_yield_none_for_clean(self):
        data = get_dataset("SZ-TAXI", seed=0)
        windows = make_windows(data, p=6, q=6)
        for _, _, y_mask in iterate_masked_batches(windows, 32):
            assert y_mask is None


class TestFingerprint:
    def test_mask_changes_fingerprint_only_when_present(self):
        from repro.runtime.fingerprint import task_fingerprint_material
        from repro.tasks import Task

        clean = get_dataset("SZ-TAXI", seed=0)
        material = task_fingerprint_material(Task(data=clean, p=6, q=6))
        assert "mask_sha256" not in material

        dirty = corrupt_dataset(clean, "block_missing", severity=0.25, seed=0)
        dirty_material = task_fingerprint_material(Task(data=dirty, p=6, q=6))
        assert "mask_sha256" in dirty_material

        other = corrupt_dataset(clean, "block_missing", severity=0.5, seed=0)
        other_material = task_fingerprint_material(Task(data=other, p=6, q=6))
        assert other_material["mask_sha256"] != dirty_material["mask_sha256"]
