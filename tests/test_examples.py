"""Smoke tests keeping the example scripts importable and runnable.

Only the fastest example runs end to end here; the others are compile- and
import-checked so they cannot silently rot.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "traffic_zero_shot.py",
            "electricity_autocts_plus.py",
            "joint_vs_arch_only.py",
            "custom_operator.py",
            "supernet_vs_zero_shot.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_example_parses_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{path.name} must define main()"
        docstring = ast.get_docstring(tree)
        assert docstring and "Run:" in docstring, f"{path.name} must document how to run"

    def test_quickstart_runs_end_to_end(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "test MAE=" in completed.stdout
